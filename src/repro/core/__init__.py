"""AdaSense core: the paper's primary contribution.

The core subpackage contains everything that is specific to AdaSense
rather than to the simulated substrate:

* :mod:`repro.core.activities` — the six recognised activities;
* :mod:`repro.core.config` — sensor configurations, the Table I design
  space and Pareto-front utilities;
* :mod:`repro.core.features` — the unified, size-invariant feature
  extraction;
* :mod:`repro.core.pipeline` — the feature/scale/classify HAR pipeline;
* :mod:`repro.core.controller` — the SPOT and SPOT-with-confidence
  adaptive controllers plus the static baseline controller;
* :mod:`repro.core.dse` — the sensor-configuration design-space
  exploration behind Fig. 2;
* :mod:`repro.core.adasense` — the :class:`AdaSense` facade most users
  interact with.
"""

from repro.core.activities import (
    ALL_ACTIVITIES,
    DYNAMIC_ACTIVITIES,
    NUM_ACTIVITIES,
    STATIC_ACTIVITIES,
    Activity,
)
from repro.core.adasense import AdaSense
from repro.core.config import (
    DEFAULT_SPOT_STATES,
    HIGH_POWER_CONFIG,
    LOW_POWER_CONFIG,
    TABLE1_BY_NAME,
    TABLE1_CONFIGS,
    ConfigEvaluation,
    OperationMode,
    SensorConfig,
    get_config,
    pareto_front,
)
from repro.core.controller import (
    AdaptiveController,
    SpotController,
    SpotWithConfidenceController,
    StaticController,
)
from repro.core.dse import DesignSpaceExplorer, DseResult
from repro.core.features import FeatureExtractor, default_feature_extractor
from repro.core.pipeline import ClassificationResult, HarPipeline

__all__ = [
    "Activity",
    "ALL_ACTIVITIES",
    "STATIC_ACTIVITIES",
    "DYNAMIC_ACTIVITIES",
    "NUM_ACTIVITIES",
    "AdaSense",
    "SensorConfig",
    "OperationMode",
    "ConfigEvaluation",
    "TABLE1_CONFIGS",
    "TABLE1_BY_NAME",
    "DEFAULT_SPOT_STATES",
    "HIGH_POWER_CONFIG",
    "LOW_POWER_CONFIG",
    "get_config",
    "pareto_front",
    "AdaptiveController",
    "SpotController",
    "SpotWithConfidenceController",
    "StaticController",
    "DesignSpaceExplorer",
    "DseResult",
    "FeatureExtractor",
    "default_feature_extractor",
    "ClassificationResult",
    "HarPipeline",
]

"""Unified feature extraction (Section III-B).

The central trick that lets AdaSense use a *single* classifier across
heterogeneous sensor configurations is a feature vector whose size does
not depend on how many samples the classification window contains:

* **Statistical features** — the mean and standard deviation of each of
  the three axes (6 values).  These capture the orientation of gravity
  and the overall signal energy.
* **Fourier features** — a fixed number of low-frequency spectral
  features per axis covering the band up to
  :data:`DEFAULT_MAX_FREQUENCY_HZ` (the paper keeps "the first three
  coefficients in each coordinate, representing the frequency
  components up to 3 Hz").

Because the frequency resolution of a fixed-duration window is
independent of the sampling rate, the same spectral band maps onto the
same features no matter which configuration acquired the data — the
classifier only has to learn to cope with the different noise levels.

Two spellings of the Fourier features are provided:

``bands`` (default)
    The spectrum of each axis is folded into ``n_fourier_features``
    equal-width bands spanning ``(0, max_frequency_hz]`` and the RMS
    magnitude of each band is reported.  This is robust to the exact
    fundamental frequency of a gait cycle landing between FFT bins.
``bins``
    The magnitudes of the first ``n_fourier_features`` non-DC FFT bins
    are reported directly — the literal reading of the paper's
    description.  Exposed mainly for the feature ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, List, Literal, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_positive, check_positive_int

#: Duration of one classification window in seconds (Section III-A).
WINDOW_DURATION_S: float = 2.0

#: Hop between consecutive classification windows in seconds, giving the
#: one-second overlap described in the paper.
HOP_DURATION_S: float = 1.0

#: Highest frequency represented by the Fourier features.
DEFAULT_MAX_FREQUENCY_HZ: float = 3.0

#: Number of accelerometer axes.
_NUM_AXES: int = 3

FourierMode = Literal["bands", "bins"]

#: Real dtypes a compute lane may run in (complex spectra follow along:
#: ``float32`` windows produce ``complex64`` DFT coefficients).
SUPPORTED_DTYPES: Tuple[np.dtype, ...] = (
    np.dtype(np.float64),
    np.dtype(np.float32),
)


def _lane_dtype(dtype) -> np.dtype:
    """Normalise and validate a compute-lane dtype."""
    resolved = np.dtype(dtype)
    if resolved not in SUPPORTED_DTYPES:
        raise ValueError(
            f"dtype must be float64 or float32, got {dtype!r}"
        )
    return resolved


def _complex_dtype(dtype: np.dtype) -> np.dtype:
    """The complex dtype matching a real lane dtype."""
    return np.dtype(np.complex64 if dtype == np.float32 else np.complex128)


def _as_samples(samples, dtype: np.dtype) -> np.ndarray:
    """``np.asarray(samples, dtype=dtype)`` without the redundant pass.

    Sample stacks arriving from the ring buffer or the stacked
    acquisition path are already C-contiguous arrays of the lane dtype,
    so the common case returns the input untouched instead of paying an
    ``asarray`` round trip (and, in the float32 lane, an accidental
    upcast-copy to float64) per extraction call.
    """
    if (
        isinstance(samples, np.ndarray)
        and samples.dtype == dtype
        and samples.flags.c_contiguous
    ):
        return samples
    return np.asarray(samples, dtype=dtype)


@lru_cache(maxsize=512)
def _spectral_layout(
    n_samples: int,
    sampling_hz: float,
    max_frequency_hz: float,
    n_fourier_features: int,
) -> Tuple[np.ndarray, Tuple[np.ndarray, ...]]:
    """FFT bin frequencies and per-band masks for one window geometry.

    Keyed by ``(n_samples, sampling_hz)`` (plus the extractor's band
    layout), so repeated extractions over the same window shape — the
    common case in closed-loop and fleet simulation, where the same
    sensor configuration is classified every second — reuse one
    frequency grid and one set of boolean band masks instead of
    recomputing them per call.  The returned arrays are frozen so a
    cache hit can never be mutated by a caller.
    """
    frequencies = np.fft.rfftfreq(n_samples, d=1.0 / sampling_hz)
    edges = np.linspace(0.0, max_frequency_hz, n_fourier_features + 1)
    masks = []
    for band in range(n_fourier_features):
        mask = (frequencies > edges[band]) & (frequencies <= edges[band + 1])
        mask.setflags(write=False)
        masks.append(mask)
    frequencies.setflags(write=False)
    return frequencies, tuple(masks)


@dataclass(frozen=True)
class FeatureExtractor:
    """Turns a window of raw accelerometer samples into a fixed-size vector.

    Parameters
    ----------
    n_fourier_features:
        Number of Fourier features per axis (the paper uses 3).
    max_frequency_hz:
        Upper edge of the spectral band covered by the Fourier features.
    fourier_mode:
        ``"bands"`` (default) or ``"bins"``; see the module docstring.
    """

    n_fourier_features: int = 3
    max_frequency_hz: float = DEFAULT_MAX_FREQUENCY_HZ
    fourier_mode: FourierMode = "bands"

    def __post_init__(self) -> None:
        check_positive_int(self.n_fourier_features, "n_fourier_features")
        check_positive(self.max_frequency_hz, "max_frequency_hz")
        if self.fourier_mode not in ("bands", "bins"):
            raise ValueError(
                f"fourier_mode must be 'bands' or 'bins', got {self.fourier_mode!r}"
            )

    @property
    def num_features(self) -> int:
        """Length of the extracted feature vector."""
        return 2 * _NUM_AXES + self.n_fourier_features * _NUM_AXES

    def feature_names(self) -> List[str]:
        """Names of the features in extraction order."""
        axes = ("x", "y", "z")
        names = [f"mean_{axis}" for axis in axes]
        names += [f"std_{axis}" for axis in axes]
        for axis in axes:
            for index in range(self.n_fourier_features):
                names.append(f"fft{index + 1}_{axis}")
        return names

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------
    def extract(
        self, samples: np.ndarray, sampling_hz: float, dtype=np.float64
    ) -> np.ndarray:
        """Extract the unified feature vector from one window.

        Parameters
        ----------
        samples:
            Array of shape ``(n, 3)`` of accelerometer samples in m/s^2.
        sampling_hz:
            Output data rate the samples were acquired at; required to
            map FFT bins onto physical frequencies.
        dtype:
            Compute-lane dtype (``float64`` default, or ``float32`` for
            the reduced-precision lane).

        Returns
        -------
        numpy.ndarray
            Vector of length :attr:`num_features`.
        """
        samples = _as_samples(samples, _lane_dtype(dtype))
        if samples.ndim != 2 or samples.shape[1] != _NUM_AXES:
            raise ValueError(f"samples must have shape (n, 3), got {samples.shape}")
        if samples.shape[0] < 2:
            raise ValueError(
                f"at least two samples are required, got {samples.shape[0]}"
            )
        return self.extract_stacked(samples[None, :, :], sampling_hz, dtype=dtype)[0]

    def extract_stacked(
        self, samples: np.ndarray, sampling_hz: float, dtype=np.float64
    ) -> np.ndarray:
        """Extract features for a stack of equally-shaped windows at once.

        This is the vectorised path the fleet simulator relies on: all
        per-window NumPy reductions run along the window axis of one 3-D
        array, so extracting features for hundreds of devices costs a
        handful of array operations instead of hundreds of Python calls.
        :meth:`extract` delegates here with a stack of one, so both paths
        share a single implementation and produce bit-identical results.

        Parameters
        ----------
        samples:
            Array of shape ``(batch, n, 3)`` — ``batch`` windows of ``n``
            samples each, all acquired at the same ``sampling_hz``.
        sampling_hz:
            Output data rate shared by every window in the stack.

        Returns
        -------
        numpy.ndarray
            Matrix of shape ``(batch, num_features)``.
        """
        check_positive(sampling_hz, "sampling_hz")
        samples = _as_samples(samples, _lane_dtype(dtype))
        if samples.ndim != 3 or samples.shape[2] != _NUM_AXES:
            raise ValueError(
                f"stacked samples must have shape (batch, n, 3), got {samples.shape}"
            )
        if samples.shape[1] < 2:
            raise ValueError(
                f"at least two samples per window are required, got {samples.shape[1]}"
            )

        means = samples.mean(axis=1)
        stds = samples.std(axis=1)
        fourier = self._fourier_features_stacked(samples, sampling_hz)
        return np.concatenate([means, stds, fourier], axis=1)

    def extract_batch(
        self,
        windows: Iterable[Tuple[np.ndarray, float]],
        dtype=np.float64,
    ) -> np.ndarray:
        """Extract features for a sequence of ``(samples, sampling_hz)`` pairs.

        Windows sharing a shape and sampling rate are grouped and pushed
        through :meth:`extract_stacked` together; the returned rows keep
        the input order.  The output matrix is always float64 (the
        classifier boundary); ``dtype`` selects the compute lane.
        """
        lane = _lane_dtype(dtype)
        items = [
            (_as_samples(samples, lane), float(sampling_hz))
            for samples, sampling_hz in windows
        ]
        output = np.empty((len(items), self.num_features))
        groups: dict[Tuple[Tuple[int, ...], float], List[int]] = {}
        for index, (samples, sampling_hz) in enumerate(items):
            if samples.ndim != 2 or samples.shape[1] != _NUM_AXES:
                raise ValueError(
                    f"samples must have shape (n, 3), got {samples.shape}"
                )
            groups.setdefault((samples.shape, sampling_hz), []).append(index)
        for (_, sampling_hz), indices in groups.items():
            stacked = np.stack([items[index][0] for index in indices])
            output[indices] = self.extract_stacked(stacked, sampling_hz, dtype=dtype)
        return output

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _fourier_features_stacked(
        self, samples: np.ndarray, sampling_hz: float
    ) -> np.ndarray:
        batch, n_samples = samples.shape[0], samples.shape[1]
        centered = samples - samples.mean(axis=1, keepdims=True)
        spectrum = np.abs(np.fft.rfft(centered, axis=1)) * (2.0 / n_samples)

        if self.fourier_mode == "bins":
            features = np.zeros(
                (batch, self.n_fourier_features, _NUM_AXES), dtype=samples.dtype
            )
            available = min(self.n_fourier_features, spectrum.shape[1] - 1)
            if available > 0:
                features[:, :available] = spectrum[:, 1 : available + 1]
            return features.transpose(0, 2, 1).reshape(batch, -1)

        # "bands" mode: RMS magnitude in equal-width bands up to
        # max_frequency_hz.  The frequency grid and per-band masks only
        # depend on the window geometry, so they come from the shared cache.
        _, masks = _spectral_layout(
            n_samples,
            float(sampling_hz),
            self.max_frequency_hz,
            self.n_fourier_features,
        )
        features = np.zeros(
            (batch, self.n_fourier_features, _NUM_AXES), dtype=samples.dtype
        )
        for band, mask in enumerate(masks):
            # The DC bin is excluded by construction (frequencies > low >= 0).
            if mask.any():
                features[:, band] = np.sqrt(
                    np.mean(spectrum[:, mask, :] ** 2, axis=1)
                )
        return features.transpose(0, 2, 1).reshape(batch, -1)


def default_feature_extractor() -> FeatureExtractor:
    """The extractor configuration used throughout the paper reproduction."""
    return FeatureExtractor()


# ----------------------------------------------------------------------
# Incremental (chunk-cached) feature extraction
# ----------------------------------------------------------------------
#
# AdaSense classifies overlapping windows: a two-second window every
# second, so consecutive windows share half their samples.  Recomputing
# the statistical moments and the spectrum from scratch every tick
# therefore redoes half the work.  The incremental extractor instead
# caches, per freshly acquired second ("chunk"), the partial quantities
# the features are built from:
#
# * the chunk's per-axis sample sum and sum of squares (for mean / std
#   via the two-moment identity), and
# * the chunk's contribution to the low-frequency DFT bins of the full
#   window — only bins up to ``max_frequency_hz`` matter, so this is a
#   tiny ``(bins, chunk)`` matrix product rather than a full FFT.
#
# Combining a window is then a handful of adds: the DFT contribution of
# a chunk at window offset ``p`` is its cached coefficient times the
# phase factor ``exp(-2j*pi*k*p/n)``, and sums simply accumulate.
# Mean-centering is unnecessary because subtracting a constant only
# changes the DC bin, which the features exclude.
#
# The combined features are mathematically identical to the full-window
# path and agree to ~1e-12 relative precision (floating-point summation
# order differs), which the property tests in
# ``tests/test_exec_incremental.py`` sweep over sampling rates, window /
# hop ratios and Fourier modes.  The execution engine keeps the exact
# full-window path as a fallback (warm-up ticks, configuration switches,
# misaligned geometries) and as a toggle (``features="exact"``).


@dataclass(frozen=True)
class WindowGeometry:
    """Steady-state chunk layout of the sliding classification window.

    A device acquiring at ``sampling_hz`` contributes ``chunk_samples``
    samples per step; the classification buffer caps the window at
    ``window_samples``.  When the cap is not an integer multiple of the
    chunk size (e.g. 12.5 Hz: 12-sample chunks against a 25-sample cap)
    the steady-state window consists of the ``tail_samples`` newest
    samples of the oldest buffered chunk followed by
    ``chunks_per_window`` complete chunks — exactly the structure
    :class:`repro.sensors.buffer.SampleBuffer` converges to.
    """

    sampling_hz: float
    chunk_samples: int
    window_samples: int
    chunks_per_window: int
    tail_samples: int

    @classmethod
    def for_window(
        cls, sampling_hz: float, step_s: float, window_duration_s: float
    ) -> Optional["WindowGeometry"]:
        """Geometry for one configuration, or ``None`` when incremental
        extraction cannot apply (degenerate sample counts)."""
        chunk = int(round(sampling_hz * step_s))
        window = int(round(sampling_hz * window_duration_s))
        if chunk < 1 or window < max(chunk, 2):
            return None
        full = window // chunk
        return cls(
            sampling_hz=float(sampling_hz),
            chunk_samples=chunk,
            window_samples=window,
            chunks_per_window=full,
            tail_samples=window - full * chunk,
        )

    @property
    def cached_chunks(self) -> int:
        """Chunks that must be cached before a window can be combined.

        One extra chunk is needed when the window keeps a tail of the
        oldest chunk (``tail_samples > 0``).
        """
        return self.chunks_per_window + (1 if self.tail_samples else 0)


@dataclass(frozen=True)
class _SpectralBasis:
    """Precomputed DFT basis and band layout for one window geometry.

    ``chunk_basis[k - 1, j] = exp(-2j*pi*j*k/n)`` for the spectral bins
    ``k = 1..bins`` of the ``n``-point window DFT, evaluated over one
    chunk's local sample indices; ``tail_basis`` is the same for the
    tail fragment.  ``chunk_phases[slot]`` rotates a cached chunk
    coefficient to the window offset of chunk slot ``slot``.
    """

    bins: int
    chunk_basis: np.ndarray
    tail_basis: Optional[np.ndarray]
    chunk_phases: np.ndarray
    band_masks: Optional[Tuple[np.ndarray, ...]]
    scale: float
    #: Window length to zero-pad chunks to before an rfft (float32 lane
    #: only, else ``None``): a chunk's window-bin DFT coefficients are
    #: exactly the first bins of the zero-padded chunk's ``n``-point
    #: transform, and pocketfft runs each (device, axis) transform
    #: independently — several times faster than the complex einsum in
    #: single precision *and* bit-identical regardless of how devices
    #: are grouped into batches (BLAS-backed spellings are not, which
    #: would break shard invariance).
    pad_samples: Optional[int] = None


# ----------------------------------------------------------------------
# Process-wide spectral plan cache
# ----------------------------------------------------------------------
#
# A fleet re-runs the same handful of window geometries for every device
# and every run; the DFT basis, tail basis and phase-rotation tables
# only depend on the geometry, the extractor's band layout and the
# compute dtype.  Caching the full ``_SpectralBasis`` at module level
# (same idea as ``_spectral_layout``, but covering the tail-chunk layout
# and phase tables too) lets freshly constructed extractors — a new
# ``IncrementalFeatureExtractor`` per ``StepEngine``, one per shard
# worker, one per reusable-runtime rebuild — skip the trigonometry
# entirely after the first run in the process.  The hit/miss counters
# feed the engine's ``plan_cache.hits`` / ``plan_cache.misses`` metrics.

_PlanKey = Tuple[WindowGeometry, np.dtype, int, float, str]
_PLAN_CACHE: Dict["_PlanKey", _SpectralBasis] = {}
_PLAN_CACHE_HITS: int = 0
_PLAN_CACHE_MISSES: int = 0


def spectral_plan(
    geometry: "WindowGeometry",
    extractor: FeatureExtractor,
    dtype=np.float64,
) -> _SpectralBasis:
    """The cached DFT basis and band layout for one window geometry.

    Keyed by ``(geometry, dtype)`` plus the extractor parameters that
    shape the spectral layout, so two extractors configured alike share
    one set of tables.  Returned arrays are frozen; callers must never
    mutate them.
    """
    global _PLAN_CACHE_HITS, _PLAN_CACHE_MISSES
    lane = _lane_dtype(dtype)
    key = (
        geometry,
        lane,
        extractor.n_fourier_features,
        float(extractor.max_frequency_hz),
        extractor.fourier_mode,
    )
    basis = _PLAN_CACHE.get(key)
    if basis is not None:
        _PLAN_CACHE_HITS += 1
        return basis
    _PLAN_CACHE_MISSES += 1
    basis = _build_basis(geometry, extractor, lane)
    _PLAN_CACHE[key] = basis
    return basis


def plan_cache_stats() -> Tuple[int, int]:
    """Process-wide ``(hits, misses)`` of the spectral plan cache."""
    return _PLAN_CACHE_HITS, _PLAN_CACHE_MISSES


def clear_plan_cache() -> None:
    """Drop every cached plan and zero the hit/miss counters.

    Shard workers call this right after a process fork so inherited
    parent-cache state can neither go stale nor pollute the worker's
    own plan-cache metrics.
    """
    global _PLAN_CACHE_HITS, _PLAN_CACHE_MISSES
    _PLAN_CACHE.clear()
    _PLAN_CACHE_HITS = 0
    _PLAN_CACHE_MISSES = 0


def _build_basis(
    geometry: "WindowGeometry", extractor: FeatureExtractor, dtype: np.dtype
) -> _SpectralBasis:
    """Build the spectral basis tables for one ``(geometry, dtype)``.

    The tables are always constructed in float64 and only then cast for
    the float32 lane, so single-precision runs use the correctly rounded
    double-precision trigonometry rather than accumulating float32
    phase error over long windows.
    """
    n = geometry.window_samples
    max_bin = n // 2
    band_masks: Optional[Tuple[np.ndarray, ...]] = None
    if extractor.fourier_mode == "bins":
        bins = min(extractor.n_fourier_features, max_bin)
    else:
        frequencies, masks = _spectral_layout(
            n,
            geometry.sampling_hz,
            extractor.max_frequency_hz,
            extractor.n_fourier_features,
        )
        in_band = np.flatnonzero(
            (frequencies[: max_bin + 1] > 0.0)
            & (frequencies[: max_bin + 1] <= extractor.max_frequency_hz)
        )
        bins = int(in_band[-1]) if in_band.size else 0
        band_masks = tuple(mask[1 : bins + 1] for mask in masks)

    k = np.arange(1, bins + 1)
    j_chunk = np.arange(geometry.chunk_samples)
    chunk_basis = np.exp(-2j * np.pi * np.outer(k, j_chunk) / n)
    tail_basis = None
    if geometry.tail_samples:
        j_tail = np.arange(geometry.tail_samples)
        tail_basis = np.exp(-2j * np.pi * np.outer(k, j_tail) / n)
    offsets = geometry.tail_samples + geometry.chunk_samples * np.arange(
        geometry.chunks_per_window
    )
    chunk_phases = np.exp(-2j * np.pi * np.outer(offsets, k) / n)
    complex_dtype = _complex_dtype(dtype)
    chunk_basis = chunk_basis.astype(complex_dtype, copy=False)
    chunk_phases = chunk_phases.astype(complex_dtype, copy=False)
    chunk_basis.setflags(write=False)
    chunk_phases.setflags(write=False)
    if tail_basis is not None:
        tail_basis = tail_basis.astype(complex_dtype, copy=False)
        tail_basis.setflags(write=False)
    return _SpectralBasis(
        bins=bins,
        chunk_basis=chunk_basis,
        tail_basis=tail_basis,
        chunk_phases=chunk_phases,
        band_masks=band_masks,
        scale=2.0 / n,
        pad_samples=n if dtype == np.float32 else None,
    )


class ChunkPartials:
    """Cached partial features of one acquired chunk (one device).

    ``sums`` / ``sumsq`` are the per-axis sample sums over the full
    chunk; ``dft`` its offset-free contribution to the window's
    low-frequency DFT bins.  The ``tail_*`` fields hold the same
    quantities for the chunk's newest ``tail_samples`` samples (``None``
    for aligned geometries), used once the chunk becomes the oldest,
    partially trimmed entry of the buffer.
    """

    __slots__ = ("sums", "sumsq", "dft", "tail_sums", "tail_sumsq", "tail_dft")

    def __init__(self, sums, sumsq, dft, tail_sums=None, tail_sumsq=None, tail_dft=None):
        self.sums = sums
        self.sumsq = sumsq
        self.dft = dft
        self.tail_sums = tail_sums
        self.tail_sumsq = tail_sumsq
        self.tail_dft = tail_dft


class StackedChunkPartials:
    """Partial features of one acquisition tick for a whole device group.

    The array-of-devices counterpart of :class:`ChunkPartials`: every
    field carries a leading batch axis, so one tick's reduction of a
    configuration group stays a single object.  The fleet engine's
    banked path keeps a short history of these per configuration and
    assembles steady-state windows with per-slot row gathers instead of
    re-stacking thousands of per-device partials every tick.
    """

    __slots__ = ("sums", "sumsq", "dft", "tail_sums", "tail_sumsq", "tail_dft")

    def __init__(self, sums, sumsq, dft, tail_sums=None, tail_sumsq=None, tail_dft=None):
        self.sums = sums
        self.sumsq = sumsq
        self.dft = dft
        self.tail_sums = tail_sums
        self.tail_sumsq = tail_sumsq
        self.tail_dft = tail_dft

    def device(self, row: int) -> ChunkPartials:
        """The single-device :class:`ChunkPartials` view of one row."""
        if self.tail_sums is None:
            return ChunkPartials(self.sums[row], self.sumsq[row], self.dft[row])
        return ChunkPartials(
            self.sums[row], self.sumsq[row], self.dft[row],
            self.tail_sums[row], self.tail_sumsq[row], self.tail_dft[row],
        )

    def slot_arrays(self, rows: np.ndarray, tail: bool):
        """Gather one combine slot (``sums``, ``sumsq``, ``dft``) for ``rows``.

        With ``tail=True`` the tail partials are gathered instead — the
        contribution a chunk makes once it is the oldest, partially
        trimmed entry of the window.
        """
        if tail:
            return self.tail_sums[rows], self.tail_sumsq[rows], self.tail_dft[rows]
        return self.sums[rows], self.sumsq[rows], self.dft[rows]


class IncrementalFeatureExtractor:
    """Chunk-cached feature extraction over overlapping windows.

    Wraps a :class:`FeatureExtractor` and reproduces its feature vector
    from per-chunk partials: each freshly acquired second is reduced
    once (:meth:`chunk_partials_stacked`), and every overlapping window
    containing it is assembled by :meth:`combine_stacked` from cached
    partials with a few vectorised adds.  :meth:`extract_stacked`
    delegates to the wrapped extractor and is the exact-equivalence
    fallback used for warm-up windows and as the ``features="exact"``
    engine toggle.

    ``dtype`` selects the compute lane: ``float64`` (default, the
    bit-exact reference) or ``float32`` (single-precision sums/sumsq
    with complex64 spectra).  Basis tables come from the process-wide
    :func:`spectral_plan` cache keyed by ``(geometry, dtype)``.
    """

    def __init__(
        self, extractor: Optional[FeatureExtractor] = None, dtype=np.float64
    ) -> None:
        self._extractor = (
            extractor if extractor is not None else default_feature_extractor()
        )
        self._dtype = _lane_dtype(dtype)

    @property
    def extractor(self) -> FeatureExtractor:
        """The wrapped full-window extractor."""
        return self._extractor

    @property
    def dtype(self) -> np.dtype:
        """The compute-lane dtype of this extractor."""
        return self._dtype

    @property
    def num_features(self) -> int:
        """Length of the extracted feature vector."""
        return self._extractor.num_features

    # ------------------------------------------------------------------
    # Exact fallback
    # ------------------------------------------------------------------
    def extract_stacked(self, samples: np.ndarray, sampling_hz: float) -> np.ndarray:
        """Exact full-window extraction (delegates to the wrapped extractor)."""
        return self._extractor.extract_stacked(
            samples, sampling_hz, dtype=self._dtype
        )

    # ------------------------------------------------------------------
    # Basis
    # ------------------------------------------------------------------
    def basis_for(self, geometry: WindowGeometry) -> _SpectralBasis:
        """The (cached) DFT basis and band layout for ``geometry``."""
        return spectral_plan(geometry, self._extractor, self._dtype)

    # ------------------------------------------------------------------
    # Incremental path
    # ------------------------------------------------------------------
    def chunk_partials_stacked(
        self, chunks: np.ndarray, geometry: WindowGeometry
    ) -> List[ChunkPartials]:
        """Reduce a stack of freshly acquired chunks to cached partials.

        Parameters
        ----------
        chunks:
            Array of shape ``(batch, chunk_samples, 3)`` — one chunk per
            device, all acquired under the same configuration.
        geometry:
            The window geometry the chunks belong to.
        """
        stacked = self.chunk_partials_arrays(chunks, geometry)
        return [stacked.device(d) for d in range(stacked.sums.shape[0])]

    def chunk_partials_arrays(
        self, chunks: np.ndarray, geometry: WindowGeometry
    ) -> StackedChunkPartials:
        """Reduce a chunk stack to one :class:`StackedChunkPartials`.

        Array-of-devices spelling of :meth:`chunk_partials_stacked`
        (whose per-device objects are row views of this result).
        """
        chunks = _as_samples(chunks, self._dtype)
        if chunks.ndim != 3 or chunks.shape[1] != geometry.chunk_samples:
            raise ValueError(
                f"chunks must have shape (batch, {geometry.chunk_samples}, 3), "
                f"got {chunks.shape}"
            )
        basis = self.basis_for(geometry)
        sums = chunks.sum(axis=1)
        sumsq = (chunks * chunks).sum(axis=1)
        # einsum contracts the sample axis with the same sequential
        # accumulation order as summing the broadcast product, so the
        # coefficients are bit-identical — without ever materialising
        # the (batch, bins, samples, 3) intermediate.  The float32 lane
        # instead zero-pads each chunk to the window length and rffts
        # it (see _SpectralBasis.pad_samples) — same coefficients up to
        # rounding, several times faster in single precision, and
        # batch-size independent, so the lane stays bit-identical
        # across engines, group compositions and shard counts.
        dft = self._chunk_dft(chunks, basis.chunk_basis, basis)
        if not geometry.tail_samples:
            return StackedChunkPartials(sums, sumsq, dft)
        tail = chunks[:, geometry.chunk_samples - geometry.tail_samples :, :]
        tail_sums = tail.sum(axis=1)
        tail_sumsq = (tail * tail).sum(axis=1)
        tail_dft = self._chunk_dft(tail, basis.tail_basis, basis)
        return StackedChunkPartials(
            sums, sumsq, dft, tail_sums, tail_sumsq, tail_dft
        )

    @staticmethod
    def _chunk_dft(
        chunks: np.ndarray, chunk_basis: np.ndarray, basis: _SpectralBasis
    ) -> np.ndarray:
        """Project a chunk stack onto the window DFT bins.

        The float64 lane keeps the bit-exact einsum contraction; the
        float32 lane (``basis.pad_samples`` set) takes the zero-padded
        rfft spelling of the same projection.
        """
        if basis.pad_samples is None:
            return np.einsum("kj,dja->dka", chunk_basis, chunks)
        padded = np.zeros(
            (chunks.shape[0], basis.pad_samples, chunks.shape[2]),
            dtype=np.float32,
        )
        padded[:, : chunks.shape[1], :] = chunks
        return np.fft.rfft(padded, axis=1)[:, 1 : basis.bins + 1, :]

    def combine_stacked(
        self,
        windows: Sequence[Sequence[ChunkPartials]],
        geometry: WindowGeometry,
    ) -> np.ndarray:
        """Assemble feature vectors from cached partials.

        Parameters
        ----------
        windows:
            One sequence of :class:`ChunkPartials` per device, ordered
            oldest to newest and exactly ``geometry.cached_chunks``
            long.  For tailed geometries the first entry contributes its
            ``tail_*`` partials, the rest their full-chunk partials.
        geometry:
            The shared window geometry.

        Returns
        -------
        numpy.ndarray
            Matrix of shape ``(len(windows), num_features)``.
        """
        expected = geometry.cached_chunks
        for window in windows:
            if len(window) != expected:
                raise ValueError(
                    f"each window needs {expected} cached chunks, got {len(window)}"
                )
        full_offset = 1 if geometry.tail_samples else 0
        slots = []
        if geometry.tail_samples:
            slots.append(
                (
                    np.stack([window[0].tail_sums for window in windows]),
                    np.stack([window[0].tail_sumsq for window in windows]),
                    np.stack([window[0].tail_dft for window in windows]),
                )
            )
        for slot in range(geometry.chunks_per_window):
            column = [window[slot + full_offset] for window in windows]
            slots.append(
                (
                    np.stack([partials.sums for partials in column]),
                    np.stack([partials.sumsq for partials in column]),
                    np.stack([partials.dft for partials in column]),
                )
            )
        return self.combine_slot_arrays(slots, geometry)

    def combine_slot_arrays(
        self,
        slots: "Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]]",
        geometry: WindowGeometry,
    ) -> np.ndarray:
        """Assemble feature vectors from already-stacked per-slot partials.

        Parameters
        ----------
        slots:
            ``geometry.cached_chunks`` triples ``(sums, sumsq, dft)``
            with a leading batch axis, ordered oldest chunk first.  For
            tailed geometries the first entry must carry the oldest
            chunk's *tail* partials.  This is the gather-based spelling
            the fleet engine's banked path feeds from its per-
            configuration :class:`StackedChunkPartials` history;
            :meth:`combine_stacked` builds the same triples from
            per-device partials.  Both produce bit-identical features.

        Returns
        -------
        numpy.ndarray
            Matrix of shape ``(batch, num_features)``.
        """
        basis = self.basis_for(geometry)
        if len(slots) != geometry.cached_chunks:
            raise ValueError(
                f"expected {geometry.cached_chunks} slots, got {len(slots)}"
            )
        batch = slots[0][0].shape[0]
        n = geometry.window_samples
        if geometry.tail_samples:
            sums, sumsq, spectrum_acc = slots[0]
            chunk_slots = slots[1:]
        else:
            sums = np.zeros((batch, _NUM_AXES), dtype=self._dtype)
            sumsq = np.zeros((batch, _NUM_AXES), dtype=self._dtype)
            spectrum_acc = np.zeros(
                (batch, basis.bins, _NUM_AXES), dtype=_complex_dtype(self._dtype)
            )
            chunk_slots = slots
        for slot, (slot_sums, slot_sumsq, slot_dft) in enumerate(chunk_slots):
            sums = sums + slot_sums
            sumsq = sumsq + slot_sumsq
            spectrum_acc = spectrum_acc + (
                slot_dft * basis.chunk_phases[slot][None, :, None]
            )
        means = sums / n
        variance = sumsq / n - means * means
        np.maximum(variance, 0.0, out=variance)
        stds = np.sqrt(variance)
        spectrum = np.abs(spectrum_acc) * basis.scale
        fourier = self._fourier_from_spectrum(spectrum, basis)
        return np.concatenate([means, stds, fourier], axis=1)

    def _fourier_from_spectrum(
        self, spectrum: np.ndarray, basis: _SpectralBasis
    ) -> np.ndarray:
        batch = spectrum.shape[0]
        n_fourier = self._extractor.n_fourier_features
        features = np.zeros((batch, n_fourier, _NUM_AXES), dtype=spectrum.dtype)
        if self._extractor.fourier_mode == "bins":
            available = min(n_fourier, basis.bins)
            if available > 0:
                features[:, :available] = spectrum[:, :available]
        else:
            assert basis.band_masks is not None
            for band, mask in enumerate(basis.band_masks):
                if mask.any():
                    features[:, band] = np.sqrt(
                        np.mean(spectrum[:, mask, :] ** 2, axis=1)
                    )
        return features.transpose(0, 2, 1).reshape(batch, -1)


def window_sample_count(sampling_hz: float, duration_s: float = WINDOW_DURATION_S) -> int:
    """Number of samples a window of ``duration_s`` seconds contains."""
    check_positive(sampling_hz, "sampling_hz")
    check_positive(duration_s, "duration_s")
    return int(round(sampling_hz * duration_s))


def sliding_window_starts(
    total_duration_s: float,
    window_s: float = WINDOW_DURATION_S,
    hop_s: float = HOP_DURATION_S,
) -> np.ndarray:
    """Start times of the sliding classification windows over a recording."""
    check_positive(total_duration_s, "total_duration_s")
    check_positive(window_s, "window_s")
    check_positive(hop_s, "hop_s")
    if total_duration_s < window_s:
        return np.empty(0)
    last_start = total_duration_s - window_s
    # A recording of exactly window_s + k * hop_s seconds must yield k + 1
    # windows, but accumulated floating-point error can leave the quotient
    # a few ulps below the integer (e.g. (4.1 - 2.0) / 0.7 < 3), silently
    # dropping the last window.  Snap quotients within a relative tolerance
    # of the next integer before flooring.
    quotient = last_start / hop_s
    tolerance = 1e-9 * max(1.0, abs(quotient))
    count = int(np.floor(quotient + tolerance)) + 1
    return hop_s * np.arange(count)

"""Unified feature extraction (Section III-B).

The central trick that lets AdaSense use a *single* classifier across
heterogeneous sensor configurations is a feature vector whose size does
not depend on how many samples the classification window contains:

* **Statistical features** — the mean and standard deviation of each of
  the three axes (6 values).  These capture the orientation of gravity
  and the overall signal energy.
* **Fourier features** — a fixed number of low-frequency spectral
  features per axis covering the band up to
  :data:`DEFAULT_MAX_FREQUENCY_HZ` (the paper keeps "the first three
  coefficients in each coordinate, representing the frequency
  components up to 3 Hz").

Because the frequency resolution of a fixed-duration window is
independent of the sampling rate, the same spectral band maps onto the
same features no matter which configuration acquired the data — the
classifier only has to learn to cope with the different noise levels.

Two spellings of the Fourier features are provided:

``bands`` (default)
    The spectrum of each axis is folded into ``n_fourier_features``
    equal-width bands spanning ``(0, max_frequency_hz]`` and the RMS
    magnitude of each band is reported.  This is robust to the exact
    fundamental frequency of a gait cycle landing between FFT bins.
``bins``
    The magnitudes of the first ``n_fourier_features`` non-DC FFT bins
    are reported directly — the literal reading of the paper's
    description.  Exposed mainly for the feature ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Literal, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_positive, check_positive_int

#: Duration of one classification window in seconds (Section III-A).
WINDOW_DURATION_S: float = 2.0

#: Hop between consecutive classification windows in seconds, giving the
#: one-second overlap described in the paper.
HOP_DURATION_S: float = 1.0

#: Highest frequency represented by the Fourier features.
DEFAULT_MAX_FREQUENCY_HZ: float = 3.0

#: Number of accelerometer axes.
_NUM_AXES: int = 3

FourierMode = Literal["bands", "bins"]


@dataclass(frozen=True)
class FeatureExtractor:
    """Turns a window of raw accelerometer samples into a fixed-size vector.

    Parameters
    ----------
    n_fourier_features:
        Number of Fourier features per axis (the paper uses 3).
    max_frequency_hz:
        Upper edge of the spectral band covered by the Fourier features.
    fourier_mode:
        ``"bands"`` (default) or ``"bins"``; see the module docstring.
    """

    n_fourier_features: int = 3
    max_frequency_hz: float = DEFAULT_MAX_FREQUENCY_HZ
    fourier_mode: FourierMode = "bands"

    def __post_init__(self) -> None:
        check_positive_int(self.n_fourier_features, "n_fourier_features")
        check_positive(self.max_frequency_hz, "max_frequency_hz")
        if self.fourier_mode not in ("bands", "bins"):
            raise ValueError(
                f"fourier_mode must be 'bands' or 'bins', got {self.fourier_mode!r}"
            )

    @property
    def num_features(self) -> int:
        """Length of the extracted feature vector."""
        return 2 * _NUM_AXES + self.n_fourier_features * _NUM_AXES

    def feature_names(self) -> List[str]:
        """Names of the features in extraction order."""
        axes = ("x", "y", "z")
        names = [f"mean_{axis}" for axis in axes]
        names += [f"std_{axis}" for axis in axes]
        for axis in axes:
            for index in range(self.n_fourier_features):
                names.append(f"fft{index + 1}_{axis}")
        return names

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------
    def extract(self, samples: np.ndarray, sampling_hz: float) -> np.ndarray:
        """Extract the unified feature vector from one window.

        Parameters
        ----------
        samples:
            Array of shape ``(n, 3)`` of accelerometer samples in m/s^2.
        sampling_hz:
            Output data rate the samples were acquired at; required to
            map FFT bins onto physical frequencies.

        Returns
        -------
        numpy.ndarray
            Vector of length :attr:`num_features`.
        """
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 2 or samples.shape[1] != _NUM_AXES:
            raise ValueError(f"samples must have shape (n, 3), got {samples.shape}")
        if samples.shape[0] < 2:
            raise ValueError(
                f"at least two samples are required, got {samples.shape[0]}"
            )
        return self.extract_stacked(samples[None, :, :], sampling_hz)[0]

    def extract_stacked(self, samples: np.ndarray, sampling_hz: float) -> np.ndarray:
        """Extract features for a stack of equally-shaped windows at once.

        This is the vectorised path the fleet simulator relies on: all
        per-window NumPy reductions run along the window axis of one 3-D
        array, so extracting features for hundreds of devices costs a
        handful of array operations instead of hundreds of Python calls.
        :meth:`extract` delegates here with a stack of one, so both paths
        share a single implementation and produce bit-identical results.

        Parameters
        ----------
        samples:
            Array of shape ``(batch, n, 3)`` — ``batch`` windows of ``n``
            samples each, all acquired at the same ``sampling_hz``.
        sampling_hz:
            Output data rate shared by every window in the stack.

        Returns
        -------
        numpy.ndarray
            Matrix of shape ``(batch, num_features)``.
        """
        check_positive(sampling_hz, "sampling_hz")
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 3 or samples.shape[2] != _NUM_AXES:
            raise ValueError(
                f"stacked samples must have shape (batch, n, 3), got {samples.shape}"
            )
        if samples.shape[1] < 2:
            raise ValueError(
                f"at least two samples per window are required, got {samples.shape[1]}"
            )

        means = samples.mean(axis=1)
        stds = samples.std(axis=1)
        fourier = self._fourier_features_stacked(samples, sampling_hz)
        return np.concatenate([means, stds, fourier], axis=1)

    def extract_batch(
        self, windows: Iterable[Tuple[np.ndarray, float]]
    ) -> np.ndarray:
        """Extract features for a sequence of ``(samples, sampling_hz)`` pairs.

        Windows sharing a shape and sampling rate are grouped and pushed
        through :meth:`extract_stacked` together; the returned rows keep
        the input order.
        """
        items = [
            (np.asarray(samples, dtype=float), float(sampling_hz))
            for samples, sampling_hz in windows
        ]
        output = np.empty((len(items), self.num_features))
        groups: dict[Tuple[Tuple[int, ...], float], List[int]] = {}
        for index, (samples, sampling_hz) in enumerate(items):
            if samples.ndim != 2 or samples.shape[1] != _NUM_AXES:
                raise ValueError(
                    f"samples must have shape (n, 3), got {samples.shape}"
                )
            groups.setdefault((samples.shape, sampling_hz), []).append(index)
        for (_, sampling_hz), indices in groups.items():
            stacked = np.stack([items[index][0] for index in indices])
            output[indices] = self.extract_stacked(stacked, sampling_hz)
        return output

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _fourier_features_stacked(
        self, samples: np.ndarray, sampling_hz: float
    ) -> np.ndarray:
        batch, n_samples = samples.shape[0], samples.shape[1]
        centered = samples - samples.mean(axis=1, keepdims=True)
        spectrum = np.abs(np.fft.rfft(centered, axis=1)) * (2.0 / n_samples)
        frequencies = np.fft.rfftfreq(n_samples, d=1.0 / sampling_hz)

        if self.fourier_mode == "bins":
            features = np.zeros((batch, self.n_fourier_features, _NUM_AXES))
            available = min(self.n_fourier_features, spectrum.shape[1] - 1)
            if available > 0:
                features[:, :available] = spectrum[:, 1 : available + 1]
            return features.transpose(0, 2, 1).reshape(batch, -1)

        # "bands" mode: RMS magnitude in equal-width bands up to max_frequency_hz.
        edges = np.linspace(
            0.0, self.max_frequency_hz, self.n_fourier_features + 1
        )
        features = np.zeros((batch, self.n_fourier_features, _NUM_AXES))
        for band in range(self.n_fourier_features):
            low, high = edges[band], edges[band + 1]
            mask = (frequencies > low) & (frequencies <= high)
            # Exclude the DC bin explicitly (frequencies > 0 already does).
            if mask.any():
                features[:, band] = np.sqrt(
                    np.mean(spectrum[:, mask, :] ** 2, axis=1)
                )
        return features.transpose(0, 2, 1).reshape(batch, -1)


def default_feature_extractor() -> FeatureExtractor:
    """The extractor configuration used throughout the paper reproduction."""
    return FeatureExtractor()


def window_sample_count(sampling_hz: float, duration_s: float = WINDOW_DURATION_S) -> int:
    """Number of samples a window of ``duration_s`` seconds contains."""
    check_positive(sampling_hz, "sampling_hz")
    check_positive(duration_s, "duration_s")
    return int(round(sampling_hz * duration_s))


def sliding_window_starts(
    total_duration_s: float,
    window_s: float = WINDOW_DURATION_S,
    hop_s: float = HOP_DURATION_S,
) -> np.ndarray:
    """Start times of the sliding classification windows over a recording."""
    check_positive(total_duration_s, "total_duration_s")
    check_positive(window_s, "window_s")
    check_positive(hop_s, "hop_s")
    if total_duration_s < window_s:
        return np.empty(0)
    last_start = total_duration_s - window_s
    count = int(np.floor(last_start / hop_s)) + 1
    return hop_s * np.arange(count)

"""Online (push-style) interface to the AdaSense loop.

The closed-loop simulator owns the whole world: it generates the signal,
samples it and advances time.  A firmware integration works the other way
around — the device pushes each freshly acquired batch of samples and
wants back the classification plus the sensor configuration to use for
the *next* acquisition.  :class:`StreamingAdaSense` provides exactly that
push-style API on top of the same buffer, pipeline and controller pieces,
so the logic validated in simulation is the logic a port would run.

Typical usage::

    stream = StreamingAdaSense(pipeline=system.pipeline,
                               controller=SpotWithConfidenceController())
    config = stream.current_config            # acquire under this config
    step = stream.push(samples, config)        # push the acquired second
    next_config = step.next_config             # reconfigure the sensor
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import SensorConfig
from repro.core.controller import AdaptiveController, SpotWithConfidenceController
from repro.core.features import WINDOW_DURATION_S
from repro.core.pipeline import ClassificationResult, HarPipeline
from repro.sensors.buffer import SampleBuffer
from repro.sensors.imu import SensorWindow


@dataclass(frozen=True)
class StreamingStep:
    """Outcome of pushing one batch of samples into the streaming loop.

    Attributes
    ----------
    result:
        Classification of the currently buffered window, or ``None`` when
        the buffer does not yet hold enough data to classify.
    next_config:
        Sensor configuration the caller should use for the next
        acquisition episode.
    buffered_duration_s:
        Seconds of signal currently represented in the buffer.
    """

    result: Optional[ClassificationResult]
    next_config: SensorConfig
    buffered_duration_s: float


class StreamingAdaSense:
    """Push-style AdaSense loop for integration with a real acquisition path.

    Parameters
    ----------
    pipeline:
        The trained HAR pipeline shared across configurations.
    controller:
        The adaptive controller; defaults to SPOT-with-confidence with the
        paper's settings.
    window_duration_s:
        Classification-buffer length (two seconds in the paper).
    min_classify_duration_s:
        Minimum buffered signal needed before a classification is
        attempted (one second by default, mirroring the simulator's
        behaviour right after a configuration switch).
    """

    def __init__(
        self,
        pipeline: HarPipeline,
        controller: Optional[AdaptiveController] = None,
        window_duration_s: float = WINDOW_DURATION_S,
        min_classify_duration_s: float = 1.0,
    ) -> None:
        if min_classify_duration_s <= 0 or min_classify_duration_s > window_duration_s:
            raise ValueError(
                "min_classify_duration_s must lie in (0, window_duration_s], got "
                f"{min_classify_duration_s}"
            )
        self._pipeline = pipeline
        self._controller = (
            controller if controller is not None else SpotWithConfidenceController()
        )
        self._buffer = SampleBuffer(window_duration_s=window_duration_s)
        self._min_classify_duration_s = float(min_classify_duration_s)
        self._samples_seen = 0
        self._steps = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pipeline(self) -> HarPipeline:
        """The HAR pipeline used for every classification."""
        return self._pipeline

    @property
    def controller(self) -> AdaptiveController:
        """The adaptive controller driving the configuration."""
        return self._controller

    @property
    def current_config(self) -> SensorConfig:
        """Configuration the caller should acquire the next batch under."""
        return self._controller.current_config

    @property
    def samples_seen(self) -> int:
        """Total number of samples pushed so far."""
        return self._samples_seen

    @property
    def steps(self) -> int:
        """Number of classification steps performed so far."""
        return self._steps

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear the buffer and return the controller to its initial state."""
        self._buffer.clear()
        self._controller.reset()
        self._samples_seen = 0
        self._steps = 0

    def push(self, samples: np.ndarray, config: SensorConfig) -> StreamingStep:
        """Push one acquired batch and advance the loop.

        Parameters
        ----------
        samples:
            Raw accelerometer samples of shape ``(n, 3)`` acquired under
            ``config`` (normally one second's worth).
        config:
            The configuration the batch was acquired under.  Pushing a
            batch from a different configuration than the buffered one
            flushes the buffer, exactly like the on-device FIFO restart.

        Returns
        -------
        StreamingStep
        """
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 2 or samples.shape[1] != 3:
            raise ValueError(f"samples must have shape (n, 3), got {samples.shape}")
        if samples.shape[0] == 0:
            raise ValueError("samples must contain at least one row")

        period = 1.0 / config.sampling_hz
        start = self._samples_seen * 0.0  # times are only used for bookkeeping
        times = start + period * np.arange(1, samples.shape[0] + 1)
        self._buffer.push(SensorWindow(samples=samples, times_s=times, config=config))
        self._samples_seen += int(samples.shape[0])

        if self._buffer.buffered_duration_s + 1e-9 < self._min_classify_duration_s:
            return StreamingStep(
                result=None,
                next_config=self._controller.current_config,
                buffered_duration_s=self._buffer.buffered_duration_s,
            )

        batch = self._buffer.window()
        result = self._pipeline.classify_window(batch)
        next_config = self._controller.update(result.activity, result.confidence)
        self._steps += 1
        return StreamingStep(
            result=result,
            next_config=next_config,
            buffered_duration_s=self._buffer.buffered_duration_s,
        )

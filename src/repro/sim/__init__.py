"""Closed-loop simulation of the AdaSense system.

The subpackage drives the full loop of Fig. 3 against a synthetic user:
an activity schedule produces a continuous signal, the simulated
accelerometer samples it under the configuration chosen by the adaptive
controller, the HAR pipeline classifies each buffered batch, and the
controller reacts to the classification — while the energy model keeps
track of what the sensor cost during every one-second episode.

* :mod:`repro.sim.trace` — per-step records and trace-level summaries;
* :mod:`repro.sim.runtime` — the step-by-step simulator.
"""

from repro.sim.runtime import ClosedLoopSimulator
from repro.sim.streaming import StreamingAdaSense, StreamingStep
from repro.sim.trace import SimulationTrace, StepRecord

__all__ = [
    "ClosedLoopSimulator",
    "StreamingAdaSense",
    "StreamingStep",
    "SimulationTrace",
    "StepRecord",
]

"""Step-by-step closed-loop simulation of the AdaSense framework (Fig. 3).

Each simulated second the loop performs exactly what the deployed system
would:

1. the accelerometer acquires one second of samples under the
   configuration chosen by the adaptive controller for this episode;
2. the samples are pushed into the two-second classification buffer
   (which flushes itself if the configuration just changed);
3. the buffered batch goes through feature extraction and the shared
   classifier;
4. the controller consumes the classification (activity + confidence)
   and decides the configuration for the next episode;
5. the energy model charges the episode with the current draw of the
   configuration that was active while the data was acquired.

The result is a :class:`repro.sim.trace.SimulationTrace` with one record
per second, from which the behavioural plot of Fig. 5 and the aggregate
power/accuracy numbers of Fig. 6 and Fig. 7 are derived.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

from repro.core.activities import Activity
from repro.core.controller import AdaptiveController
from repro.core.features import WINDOW_DURATION_S
from repro.core.pipeline import HarPipeline
from repro.datasets.scenarios import Schedule
from repro.datasets.synthetic import ScheduledSignal, SyntheticSignalGenerator
from repro.energy.accelerometer import AccelerometerPowerModel
from repro.sensors.buffer import SampleBuffer
from repro.sensors.imu import (
    DEFAULT_INTERNAL_RATE_HZ,
    NoiseModel,
    SimulatedAccelerometer,
)
from repro.sim.trace import SimulationTrace, StepRecord
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive

#: Anything the simulator accepts as "the user's behaviour".
ScheduleLike = Union[Schedule, Sequence[Tuple[Activity, float]], ScheduledSignal]


class ClosedLoopSimulator:
    """Runs the sense → classify → adapt loop over an activity schedule.

    Parameters
    ----------
    pipeline:
        The trained HAR pipeline shared by every sensor configuration.
    controller:
        The adaptive controller deciding the per-episode configuration.
        The simulator calls :meth:`reset` at the start of every run.
    power_model:
        Accelerometer current model used for the per-step energy
        accounting.
    noise:
        Sensor noise model used for the simulated acquisitions.
    internal_rate_hz:
        Internal conversion rate of the simulated accelerometer.
    step_s:
        Classification period; the paper classifies once per second.
    window_duration_s:
        Length of the classification buffer (two seconds in the paper).
    """

    def __init__(
        self,
        pipeline: HarPipeline,
        controller: AdaptiveController,
        power_model: Optional[AccelerometerPowerModel] = None,
        noise: Optional[NoiseModel] = None,
        internal_rate_hz: float = DEFAULT_INTERNAL_RATE_HZ,
        step_s: float = 1.0,
        window_duration_s: float = WINDOW_DURATION_S,
    ) -> None:
        check_positive(step_s, "step_s")
        check_positive(window_duration_s, "window_duration_s")
        if window_duration_s < step_s:
            raise ValueError(
                "window_duration_s must be at least step_s, got "
                f"{window_duration_s} < {step_s}"
            )
        self._pipeline = pipeline
        self._controller = controller
        self._power_model = (
            power_model if power_model is not None else AccelerometerPowerModel.bmi160()
        )
        self._noise = noise if noise is not None else NoiseModel()
        self._internal_rate_hz = float(internal_rate_hz)
        self._step_s = float(step_s)
        self._window_duration_s = float(window_duration_s)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pipeline(self) -> HarPipeline:
        """The HAR pipeline used for every classification."""
        return self._pipeline

    @property
    def controller(self) -> AdaptiveController:
        """The adaptive controller driving the sensor configuration."""
        return self._controller

    @property
    def power_model(self) -> AccelerometerPowerModel:
        """The accelerometer current model."""
        return self._power_model

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def run(
        self,
        schedule: ScheduleLike,
        seed: SeedLike = None,
        generator: Optional[SyntheticSignalGenerator] = None,
    ) -> SimulationTrace:
        """Simulate the closed loop over an activity schedule.

        Parameters
        ----------
        schedule:
            Either a list of ``(activity, duration_s)`` pairs or an
            already-realised :class:`ScheduledSignal`.
        seed:
            Seed controlling both the signal realisation (when a raw
            schedule is given) and the sensor noise.
        generator:
            Optional signal generator to realise a raw schedule with.

        Returns
        -------
        SimulationTrace
            One record per classification step.
        """
        rng = as_rng(seed)
        if isinstance(schedule, ScheduledSignal):
            signal = schedule
        else:
            signal = ScheduledSignal(list(schedule), generator=generator, seed=rng)

        sensor = SimulatedAccelerometer(
            signal=signal,
            noise=self._noise,
            internal_rate_hz=self._internal_rate_hz,
            seed=rng,
        )
        buffer = SampleBuffer(window_duration_s=self._window_duration_s)
        self._controller.reset()
        # Controllers that react to the raw signal (e.g. the intensity
        # baseline repackaged as an adaptive controller) expose an
        # optional observe_window hook fed with every fresh acquisition.
        observe = getattr(self._controller, "observe_window", None)

        trace = SimulationTrace()
        total_duration = signal.duration_s
        num_steps = int(round(total_duration / self._step_s))

        for step_index in range(1, num_steps + 1):
            step_end = step_index * self._step_s
            active_config = self._controller.current_config

            acquisition = sensor.read_window(
                end_time_s=step_end,
                duration_s=self._step_s,
                config=active_config,
                rng=rng,
            )
            buffer.push(acquisition)
            if observe is not None:
                observe(acquisition)
            batch = buffer.window()
            result = self._pipeline.classify_window(batch)
            self._controller.update(result.activity, result.confidence)

            # Ground truth is taken at the midpoint of the newest second of
            # data, i.e. what the user was doing while this step's samples
            # were acquired.
            true_activity = signal.activity_at(step_end - 0.5 * self._step_s)
            trace.append(
                StepRecord(
                    time_s=step_end,
                    true_activity=true_activity,
                    predicted_activity=result.activity,
                    confidence=result.confidence,
                    config_name=active_config.name,
                    current_ua=self._power_model.current_ua(active_config),
                    duration_s=self._step_s,
                )
            )
        return trace

    def run_many(
        self,
        schedules: Sequence[ScheduleLike],
        seed: SeedLike = None,
    ) -> list[SimulationTrace]:
        """Simulate several schedules, deriving one child seed per run."""
        rng = as_rng(seed)
        traces = []
        for schedule in schedules:
            traces.append(self.run(schedule, seed=rng))
        return traces

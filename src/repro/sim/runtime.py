"""Step-by-step closed-loop simulation of the AdaSense framework (Fig. 3).

Each simulated second the loop performs exactly what the deployed system
would:

1. the accelerometer acquires one second of samples under the
   configuration chosen by the adaptive controller for this episode;
2. the samples are pushed into the two-second classification buffer
   (which flushes itself if the configuration just changed);
3. the buffered batch goes through feature extraction and the shared
   classifier;
4. the controller consumes the classification (activity + confidence)
   and decides the configuration for the next episode;
5. the energy model charges the episode with the current draw of the
   configuration that was active while the data was acquired.

The per-tick protocol itself lives in the shared execution core
(:class:`repro.exec.engine.StepEngine`) — this class is the
single-device facade over it, so the closed loop and the fleet engine
can never drift apart.  The result is a
:class:`repro.sim.trace.SimulationTrace` with one record per second,
from which the behavioural plot of Fig. 5 and the aggregate
power/accuracy numbers of Fig. 6 and Fig. 7 are derived.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

from repro.core.activities import Activity
from repro.core.controller import AdaptiveController
from repro.core.features import WINDOW_DURATION_S
from repro.core.pipeline import HarPipeline
from repro.datasets.scenarios import Schedule
from repro.datasets.synthetic import ScheduledSignal, SyntheticSignalGenerator
from repro.energy.accelerometer import AccelerometerPowerModel
from repro.exec.engine import StepEngine
from repro.sensors.imu import DEFAULT_INTERNAL_RATE_HZ, NoiseModel
from repro.sim.trace import SimulationTrace
from repro.utils.rng import SeedLike, as_rng

#: Anything the simulator accepts as "the user's behaviour".
ScheduleLike = Union[Schedule, Sequence[Tuple[Activity, float]], ScheduledSignal]


class ClosedLoopSimulator:
    """Runs the sense → classify → adapt loop over an activity schedule.

    Parameters
    ----------
    pipeline:
        The trained HAR pipeline shared by every sensor configuration.
    controller:
        The adaptive controller deciding the per-episode configuration.
        The simulator calls :meth:`reset` at the start of every run.
    power_model:
        Accelerometer current model used for the per-step energy
        accounting.
    noise:
        Sensor noise model used for the simulated acquisitions.
    internal_rate_hz:
        Internal conversion rate of the simulated accelerometer.
    step_s:
        Classification period; the paper classifies once per second.
    window_duration_s:
        Length of the classification buffer (two seconds in the paper).
    features:
        Feature-extraction mode of the underlying
        :class:`repro.exec.engine.StepEngine` — ``"incremental"``
        (default, chunk-cached) or ``"exact"`` (full-window).
    sensing:
        Acquisition mode of the engine — ``"stacked"`` (default) or
        ``"per_device"``.  Both are bit-identical for a single device.
    controllers:
        Controller-advance mode of the engine — ``"bank"`` (default,
        vectorized array-of-states) or ``"per_object"``.  Both are
        bit-identical; custom controller types automatically run per
        object either way.
    acquisition:
        Acquisition-layer mode of the engine — ``"per_device"``
        (default, bit-exact v1.3.0 measurement-noise streams) or
        ``"batched"`` (pooled counter-based streams; statistically
        equivalent noise, bit-identical across engines within the
        mode).  Named ``acquisition`` here because this facade already
        uses ``noise`` for the sensor's :class:`NoiseModel`.
    dtype:
        Compute-lane precision of the engine — ``"float64"`` (default,
        bit-exact with every prior release) or ``"float32"``
        (single-precision lane; see
        :class:`repro.exec.engine.StepEngine`).
    metrics:
        Optional :class:`repro.obs.metrics.MetricsRegistry` the engine
        records runtime telemetry into; ``None`` (default) runs
        unmetered at zero overhead.  Recording is observation only —
        traces stay bit-identical either way.
    """

    def __init__(
        self,
        pipeline: HarPipeline,
        controller: AdaptiveController,
        power_model: Optional[AccelerometerPowerModel] = None,
        noise: Optional[NoiseModel] = None,
        internal_rate_hz: float = DEFAULT_INTERNAL_RATE_HZ,
        step_s: float = 1.0,
        window_duration_s: float = WINDOW_DURATION_S,
        features: str = "incremental",
        sensing: str = "stacked",
        controllers: str = "bank",
        acquisition: str = "per_device",
        dtype: str = "float64",
        metrics=None,
    ) -> None:
        self._engine = StepEngine(
            pipeline=pipeline,
            internal_rate_hz=internal_rate_hz,
            step_s=step_s,
            window_duration_s=window_duration_s,
            features=features,
            sensing=sensing,
            controllers=controllers,
            noise=acquisition,
            dtype=dtype,
            metrics=metrics,
        )
        self._controller = controller
        self._power_model = (
            power_model if power_model is not None else AccelerometerPowerModel.bmi160()
        )
        self._noise = noise if noise is not None else NoiseModel()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pipeline(self) -> HarPipeline:
        """The HAR pipeline used for every classification."""
        return self._engine.pipeline

    @property
    def controller(self) -> AdaptiveController:
        """The adaptive controller driving the sensor configuration."""
        return self._controller

    @property
    def power_model(self) -> AccelerometerPowerModel:
        """The accelerometer current model."""
        return self._power_model

    @property
    def engine(self) -> StepEngine:
        """The shared execution core this simulator drives."""
        return self._engine

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def run(
        self,
        schedule: ScheduleLike,
        seed: SeedLike = None,
        generator: Optional[SyntheticSignalGenerator] = None,
    ) -> SimulationTrace:
        """Simulate the closed loop over an activity schedule.

        Parameters
        ----------
        schedule:
            Either a list of ``(activity, duration_s)`` pairs or an
            already-realised :class:`ScheduledSignal`.
        seed:
            Seed controlling both the signal realisation (when a raw
            schedule is given) and the sensor noise.
        generator:
            Optional signal generator to realise a raw schedule with.

        Returns
        -------
        SimulationTrace
            One record per classification step.
        """
        rng = as_rng(seed)
        if isinstance(schedule, ScheduledSignal):
            signal = schedule
        else:
            signal = ScheduledSignal(list(schedule), generator=generator, seed=rng)

        runtime = self._engine.make_runtime(
            signal=signal,
            controller=self._controller,
            power_model=self._power_model,
            noise=self._noise,
            rng=rng,
        )
        num_steps = int(round(signal.duration_s / self._engine.step_s))
        traces = self._engine.run([runtime], num_steps)
        return traces[0]

    def run_many(
        self,
        schedules: Sequence[ScheduleLike],
        seed: SeedLike = None,
    ) -> list[SimulationTrace]:
        """Simulate several schedules, deriving one child seed per run."""
        rng = as_rng(seed)
        traces = []
        for schedule in schedules:
            traces.append(self.run(schedule, seed=rng))
        return traces

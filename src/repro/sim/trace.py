"""Simulation traces: per-step records and their aggregation.

A trace is the raw material behind most of the paper's figures: Fig. 5
plots the per-second current of a single trace, while Fig. 6 and Fig. 7
aggregate many traces into average power and recognition accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.activities import Activity
from repro.energy.accounting import average_current_ua, energy_uc, state_residency


@dataclass(frozen=True)
class StepRecord:
    """Everything recorded about one classification step (one second).

    Attributes
    ----------
    time_s:
        Simulation time at the end of the step.
    true_activity:
        Ground-truth activity during the step.
    predicted_activity:
        Activity reported by the classifier.
    confidence:
        Softmax confidence of the prediction.
    config_name:
        Sensor configuration active while the step's data was acquired.
    current_ua:
        Sensor current drawn during the step, in microamperes.
    duration_s:
        Length of the step (one second unless the simulator was
        configured otherwise).
    """

    time_s: float
    true_activity: Activity
    predicted_activity: Activity
    confidence: float
    config_name: str
    current_ua: float
    duration_s: float = 1.0

    @property
    def correct(self) -> bool:
        """Whether the prediction matched the ground truth."""
        return self.true_activity == self.predicted_activity


@dataclass
class SimulationTrace:
    """An ordered collection of :class:`StepRecord` produced by one run."""

    records: List[StepRecord] = field(default_factory=list)

    def append(self, record: StepRecord) -> None:
        """Add one step to the trace."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # ------------------------------------------------------------------
    # Array views
    # ------------------------------------------------------------------
    @property
    def times_s(self) -> np.ndarray:
        """Step end times."""
        return np.array([record.time_s for record in self.records])

    @property
    def currents_ua(self) -> np.ndarray:
        """Per-step sensor current."""
        return np.array([record.current_ua for record in self.records])

    @property
    def durations_s(self) -> np.ndarray:
        """Per-step durations."""
        return np.array([record.duration_s for record in self.records])

    @property
    def config_names(self) -> List[str]:
        """Per-step active configuration names."""
        return [record.config_name for record in self.records]

    @property
    def true_labels(self) -> np.ndarray:
        """Ground-truth class indices per step."""
        return np.array([int(record.true_activity) for record in self.records])

    @property
    def predicted_labels(self) -> np.ndarray:
        """Predicted class indices per step."""
        return np.array([int(record.predicted_activity) for record in self.records])

    @property
    def confidences(self) -> np.ndarray:
        """Per-step prediction confidences."""
        return np.array([record.confidence for record in self.records])

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def _require_non_empty(self) -> None:
        if not self.records:
            raise ValueError("trace is empty")

    @property
    def duration_s(self) -> float:
        """Total simulated time covered by the trace."""
        return float(self.durations_s.sum()) if self.records else 0.0

    @property
    def accuracy(self) -> float:
        """Fraction of steps whose prediction matched the ground truth."""
        self._require_non_empty()
        return float(np.mean([record.correct for record in self.records]))

    @property
    def average_current_ua(self) -> float:
        """Time-weighted average sensor current over the trace."""
        self._require_non_empty()
        return average_current_ua(self.currents_ua, self.durations_s)

    @property
    def energy_uc(self) -> float:
        """Total sensor charge drawn over the trace, in microcoulombs."""
        self._require_non_empty()
        return energy_uc(self.currents_ua, self.durations_s)

    def state_residency(self) -> Dict[str, float]:
        """Fraction of time spent in each sensor configuration."""
        self._require_non_empty()
        return state_residency(self.config_names, self.durations_s)

    def activity_change_times(self) -> np.ndarray:
        """Times at which the ground-truth activity changed."""
        labels = self.true_labels
        times = self.times_s
        changes = [
            times[index]
            for index in range(1, len(labels))
            if labels[index] != labels[index - 1]
        ]
        return np.array(changes)

    def summary(self) -> Mapping[str, object]:
        """Bundle the headline statistics of the trace into one mapping."""
        self._require_non_empty()
        return {
            "steps": len(self.records),
            "duration_s": self.duration_s,
            "accuracy": self.accuracy,
            "average_current_ua": self.average_current_ua,
            "energy_uc": self.energy_uc,
            "state_residency": self.state_residency(),
        }

    @classmethod
    def concatenate(cls, traces: Sequence["SimulationTrace"]) -> "SimulationTrace":
        """Merge several traces into one (used when averaging over runs)."""
        merged = cls()
        for trace in traces:
            merged.records.extend(trace.records)
        return merged


@dataclass
class TraceSummary:
    """O(1)-memory running aggregate of a simulation trace.

    This is the streaming-telemetry counterpart of
    :class:`SimulationTrace`: instead of storing one record per step it
    folds every tick into a handful of per-device accumulators —
    exactly the quantities :class:`repro.fleet.telemetry.DeviceReport`
    needs — so a fleet run with ``trace="summary"`` keeps memory at
    O(devices) instead of O(devices × steps).

    The fold (one sequential addition per tick, see :meth:`fold_step`)
    is the *definition* of the summary statistics: the full-trace report
    path replays a stored trace through the same fold
    (:meth:`from_trace`), which is what makes summary-mode fleet reports
    bit-identical to full-trace ones.

    Attributes
    ----------
    steps:
        Number of classification steps folded in.
    duration_s:
        Accumulated simulated time.
    correct_steps:
        Number of steps whose prediction matched the ground truth.
    charge_uc:
        Accumulated sensor charge (current × step duration), in
        microcoulombs.
    dwell_s:
        Accumulated seconds spent in each sensor configuration.
    config_switches:
        Number of steps whose active configuration differed from the
        previous step's (the controller's switching activity).
    last_config:
        Configuration of the most recently folded step (fold state).
    """

    steps: int = 0
    duration_s: float = 0.0
    correct_steps: int = 0
    charge_uc: float = 0.0
    dwell_s: Dict[str, float] = field(default_factory=dict)
    config_switches: int = 0
    last_config: Optional[str] = None

    @classmethod
    def from_trace(cls, trace: "SimulationTrace") -> "TraceSummary":
        """Fold a fully materialised trace, record by record."""
        summary = cls()
        for record in trace.records:
            summary.fold_step(
                correct=record.correct,
                current_ua=record.current_ua,
                config_name=record.config_name,
                duration_s=record.duration_s,
            )
        return summary

    def fold_step(
        self, correct: bool, current_ua: float, config_name: str, duration_s: float
    ) -> None:
        """Fold one classification step into the running aggregates."""
        self.steps += 1
        self.duration_s += duration_s
        self.correct_steps += int(correct)
        self.charge_uc += current_ua * duration_s
        self.dwell_s[config_name] = (
            self.dwell_s.get(config_name, 0.0) + duration_s
        )
        if self.last_config is not None and config_name != self.last_config:
            self.config_switches += 1
        self.last_config = config_name

    def _require_non_empty(self) -> None:
        if self.steps == 0:
            raise ValueError("summary is empty")

    def __len__(self) -> int:
        return self.steps

    @property
    def accuracy(self) -> float:
        """Fraction of steps whose prediction matched the ground truth."""
        self._require_non_empty()
        return self.correct_steps / self.steps

    @property
    def average_current_ua(self) -> float:
        """Time-weighted average sensor current over the folded steps."""
        self._require_non_empty()
        return self.charge_uc / self.duration_s

    @property
    def energy_uc(self) -> float:
        """Total sensor charge drawn, in microcoulombs."""
        self._require_non_empty()
        return self.charge_uc

    def state_residency(self) -> Dict[str, float]:
        """Fraction of time spent in each sensor configuration."""
        self._require_non_empty()
        return {
            name: dwell / self.duration_s for name, dwell in self.dwell_s.items()
        }

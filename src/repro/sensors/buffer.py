"""The classification sample buffer of the HAR framework (Fig. 1).

The AdaSense pipeline classifies a *batch* of sensor data rather than
individual samples: the buffer stores the accelerometer output over the
last two seconds, and every second the buffered batch is pushed through
feature extraction and classification, giving a one-second overlap
between consecutive batches.

Because the adaptive controller can change the sensor configuration
between batches, the buffer may momentarily hold samples acquired at two
different sampling rates.  Mixing rates inside one batch would make the
frequency-domain features meaningless, so the buffer adopts a simple,
documented policy: **pushing samples acquired under a different
configuration flushes the buffer first.**  The first classification
after a configuration switch therefore sees one second of data instead
of two, exactly as a real implementation that restarts its FIFO would.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import SensorConfig
from repro.sensors.imu import SensorWindow
from repro.utils.validation import check_positive


class SampleBuffer:
    """Sliding buffer of accelerometer samples feeding the classifier.

    Parameters
    ----------
    window_duration_s:
        Length of the classification window the buffer maintains; the
        paper uses two seconds.
    """

    def __init__(self, window_duration_s: float = 2.0) -> None:
        check_positive(window_duration_s, "window_duration_s")
        self._window_duration_s = float(window_duration_s)
        self._samples: List[np.ndarray] = []
        self._times: List[np.ndarray] = []
        self._config: Optional[SensorConfig] = None
        # Maintained incrementally: the buffer is interrogated once per
        # device per simulated second, so recounting chunk lengths on
        # every access would put an O(chunks) sum on the fleet hot path.
        self._num_samples = 0

    @property
    def window_duration_s(self) -> float:
        """Target length of the classification window in seconds."""
        return self._window_duration_s

    @property
    def config(self) -> Optional[SensorConfig]:
        """Configuration of the currently buffered samples (``None`` if empty)."""
        return self._config

    @property
    def num_samples(self) -> int:
        """Number of samples currently buffered."""
        return self._num_samples

    @property
    def buffered_duration_s(self) -> float:
        """Seconds of signal currently represented in the buffer."""
        if self._config is None or self.num_samples == 0:
            return 0.0
        return self.num_samples / self._config.sampling_hz

    @property
    def is_empty(self) -> bool:
        """Whether the buffer holds no samples."""
        return self.num_samples == 0

    def chunk_sizes(self) -> Tuple[int, ...]:
        """Sample counts of the buffered acquisition chunks, oldest first.

        The oldest entry may be a partially trimmed chunk.  This is the
        layout :class:`repro.core.features.WindowGeometry` describes —
        the steady-state ``[tail, chunk, ..., chunk]`` pattern the
        incremental feature path's cached partials rely on, pinned down
        by the geometry tests.
        """
        return tuple(chunk.shape[0] for chunk in self._samples)

    @property
    def is_full(self) -> bool:
        """Whether a full classification window is available."""
        return self.buffered_duration_s >= self._window_duration_s - 1e-9

    def clear(self) -> None:
        """Drop all buffered samples."""
        self._samples = []
        self._times = []
        self._config = None
        self._num_samples = 0

    def push(self, window: SensorWindow) -> None:
        """Append freshly acquired samples, flushing on configuration change.

        Parameters
        ----------
        window:
            Samples returned by the simulated accelerometer.  If their
            configuration differs from the buffered one, the buffer is
            flushed before the new samples are stored.
        """
        self.push_raw(
            np.asarray(window.samples, dtype=float),
            np.asarray(window.times_s, dtype=float),
            window.config,
        )

    def push_raw(
        self, samples: np.ndarray, times_s: np.ndarray, config: SensorConfig
    ) -> None:
        """Append already-validated float64 samples without a window object.

        Semantics are exactly those of :meth:`push`; this spelling lets
        the fleet engine's banked path feed every buffer a row view of
        one stacked acquisition instead of building a
        :class:`SensorWindow` per device per tick.
        """
        if self._config is not None and config != self._config:
            self.clear()
        self._config = config
        self._samples.append(samples)
        self._times.append(times_s)
        self._num_samples += samples.shape[0]
        self._trim()

    def _trim(self) -> None:
        """Discard samples older than the classification window."""
        if self._config is None:
            return
        max_samples = int(round(self._window_duration_s * self._config.sampling_hz))
        excess = self._num_samples - max_samples
        if excess > 0:
            self._num_samples = max_samples
        while excess > 0 and self._samples:
            first = self._samples[0]
            if first.shape[0] <= excess:
                excess -= first.shape[0]
                self._samples.pop(0)
                self._times.pop(0)
            else:
                self._samples[0] = first[excess:]
                self._times[0] = self._times[0][excess:]
                excess = 0

    def window(self) -> SensorWindow:
        """Return the buffered samples as a single :class:`SensorWindow`.

        Raises
        ------
        RuntimeError
            If the buffer is empty.
        """
        if self._config is None or self.is_empty:
            raise RuntimeError("cannot read a window from an empty buffer")
        samples = np.concatenate(self._samples, axis=0)
        times = np.concatenate(self._times, axis=0)
        return SensorWindow(samples=samples, times_s=times, config=self._config)

"""The classification sample buffer of the HAR framework (Fig. 1).

The AdaSense pipeline classifies a *batch* of sensor data rather than
individual samples: the buffer stores the accelerometer output over the
last two seconds, and every second the buffered batch is pushed through
feature extraction and classification, giving a one-second overlap
between consecutive batches.

Because the adaptive controller can change the sensor configuration
between batches, the buffer may momentarily hold samples acquired at two
different sampling rates.  Mixing rates inside one batch would make the
frequency-domain features meaningless, so the buffer adopts a simple,
documented policy: **pushing samples acquired under a different
configuration flushes the buffer first.**  The first classification
after a configuration switch therefore sees one second of data instead
of two, exactly as a real implementation that restarts its FIFO would.

Storage is a preallocated ring: the classification window of a
configuration holds a fixed number of samples, so both spellings keep a
``(capacity, 3)`` array and a write cursor instead of a growing chunk
list — a push is one or two slice assignments, ``num_samples`` is a
counter, and a windowed read concatenates at most two slices across the
wrap seam.  :class:`SampleBuffer` is the per-device spelling;
:class:`RingBufferBank` holds one ring *per fleet device* in shared
arrays so the execution engine's batched path can push a whole
configuration group with a single vectorised scatter and test window
readiness with one array comparison — no per-device Python at all.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import SensorConfig
from repro.sensors.imu import SensorWindow
from repro.utils.validation import check_positive, check_positive_int


def _ring_capacity(window_duration_s: float, config: SensorConfig) -> int:
    """Samples a full classification window holds under ``config``."""
    return max(1, int(round(window_duration_s * config.sampling_hz)))


class SampleBuffer:
    """Sliding buffer of accelerometer samples feeding the classifier.

    Parameters
    ----------
    window_duration_s:
        Length of the classification window the buffer maintains; the
        paper uses two seconds.
    """

    def __init__(self, window_duration_s: float = 2.0) -> None:
        check_positive(window_duration_s, "window_duration_s")
        self._window_duration_s = float(window_duration_s)
        self._config: Optional[SensorConfig] = None
        #: Preallocated ring storage, sized for the active
        #: configuration's classification window on first push.
        self._data: Optional[np.ndarray] = None
        self._times: Optional[np.ndarray] = None
        self._capacity = 0
        #: Next write index in the ring.
        self._pos = 0
        self._num_samples = 0
        #: Sizes of the buffered acquisition chunks, oldest first (the
        #: oldest entry shrinks as the ring overwrites it).
        self._chunks: Deque[int] = deque()

    @property
    def window_duration_s(self) -> float:
        """Target length of the classification window in seconds."""
        return self._window_duration_s

    @property
    def config(self) -> Optional[SensorConfig]:
        """Configuration of the currently buffered samples (``None`` if empty)."""
        return self._config

    @property
    def num_samples(self) -> int:
        """Number of samples currently buffered (a counter, never a recount)."""
        return self._num_samples

    @property
    def capacity(self) -> int:
        """Ring slots allocated for the active configuration (0 if unset)."""
        return self._capacity

    @property
    def buffered_duration_s(self) -> float:
        """Seconds of signal currently represented in the buffer."""
        if self._config is None or self.num_samples == 0:
            return 0.0
        return self.num_samples / self._config.sampling_hz

    @property
    def is_empty(self) -> bool:
        """Whether the buffer holds no samples."""
        return self.num_samples == 0

    def chunk_sizes(self) -> Tuple[int, ...]:
        """Sample counts of the buffered acquisition chunks, oldest first.

        The oldest entry may be a partially overwritten chunk.  This is
        the layout :class:`repro.core.features.WindowGeometry` describes
        — the steady-state ``[tail, chunk, ..., chunk]`` pattern the
        incremental feature path's cached partials rely on, pinned down
        by the geometry tests.
        """
        return tuple(self._chunks)

    @property
    def is_full(self) -> bool:
        """Whether a full classification window is available."""
        return self.buffered_duration_s >= self._window_duration_s - 1e-9

    def clear(self) -> None:
        """Drop all buffered samples (ring storage is kept allocated)."""
        self._config = None
        self._pos = 0
        self._num_samples = 0
        self._chunks.clear()

    def push(self, window: SensorWindow) -> None:
        """Append freshly acquired samples, flushing on configuration change.

        Parameters
        ----------
        window:
            Samples returned by the simulated accelerometer.  If their
            configuration differs from the buffered one, the buffer is
            flushed before the new samples are stored.
        """
        self.push_raw(
            np.asarray(window.samples, dtype=float),
            np.asarray(window.times_s, dtype=float),
            window.config,
        )

    def push_raw(
        self, samples: np.ndarray, times_s: np.ndarray, config: SensorConfig
    ) -> None:
        """Append already-validated float64 samples without a window object.

        Semantics are exactly those of :meth:`push`; this spelling lets
        the execution engine feed the buffer a row of one stacked
        acquisition instead of building a :class:`SensorWindow` per
        device per tick.
        """
        if self._config is not None and config != self._config:
            self.clear()
        if self._config is None:
            capacity = _ring_capacity(self._window_duration_s, config)
            if capacity != self._capacity:
                self._capacity = capacity
                self._data = np.empty((capacity, 3))
                self._times = np.empty(capacity)
            self._config = config
        num_new = samples.shape[0]
        capacity = self._capacity
        if num_new >= capacity:
            # One chunk spans the whole window: keep its newest samples
            # as a single partially-trimmed chunk starting at slot 0.
            self._data[:] = samples[num_new - capacity :]
            self._times[:] = times_s[num_new - capacity :]
            self._pos = 0
            self._num_samples = capacity
            self._chunks.clear()
            self._chunks.append(capacity)
            return
        first = min(num_new, capacity - self._pos)
        self._data[self._pos : self._pos + first] = samples[:first]
        self._times[self._pos : self._pos + first] = times_s[:first]
        if num_new > first:
            self._data[: num_new - first] = samples[first:]
            self._times[: num_new - first] = times_s[first:]
        self._pos = (self._pos + num_new) % capacity
        self._chunks.append(num_new)
        overwritten = self._num_samples + num_new - capacity
        self._num_samples = min(self._num_samples + num_new, capacity)
        while overwritten > 0 and self._chunks:
            if self._chunks[0] <= overwritten:
                overwritten -= self._chunks.popleft()
            else:
                self._chunks[0] -= overwritten
                overwritten = 0

    def window(self) -> SensorWindow:
        """Return the buffered samples as a single :class:`SensorWindow`.

        Raises
        ------
        RuntimeError
            If the buffer is empty.
        """
        if self._config is None or self.is_empty:
            raise RuntimeError("cannot read a window from an empty buffer")
        count = self._num_samples
        start = (self._pos - count) % self._capacity
        if start + count <= self._capacity:
            samples = self._data[start : start + count].copy()
            times = self._times[start : start + count].copy()
        else:
            split = self._capacity - start
            samples = np.concatenate((self._data[start:], self._data[: count - split]))
            times = np.concatenate((self._times[start:], self._times[: count - split]))
        return SensorWindow(samples=samples, times_s=times, config=self._config)


class RingBufferBank:
    """One preallocated sample ring per fleet device, in shared arrays.

    The execution engine's batched path pushes a whole configuration
    group's stacked acquisition with one call: configuration switches
    are detected by comparing interned configuration ids, the ring
    write is a single fancy-indexed scatter, and sample counts live in
    one array so window-readiness checks vectorise.  Per-device sample
    *values* are exactly those a :class:`SampleBuffer` fed the same
    pushes would hold — the bank is a storage layout, not a semantics
    change.

    A device uses only one configuration's window at a time (a switch
    flushes), so the bank backs every device with rows of a single
    ``(devices, max_capacity, 3)`` array sized to the largest
    configuration seen so far, and ring arithmetic runs modulo the
    *active* configuration's capacity.

    Parameters
    ----------
    num_devices:
        Fleet size; device indices are ``0 .. num_devices - 1``.
    window_duration_s:
        Classification-window length shared by all devices.
    dtype:
        Sample storage dtype (float64 default; float32 stores the
        single-precision lane's quantised samples without upcasting).
    """

    def __init__(
        self,
        num_devices: int,
        window_duration_s: float = 2.0,
        dtype=np.float64,
    ) -> None:
        check_positive_int(num_devices, "num_devices")
        check_positive(window_duration_s, "window_duration_s")
        self._num_devices = num_devices
        self._window_duration_s = float(window_duration_s)
        self._dtype = np.dtype(dtype)
        self._configs: Dict[SensorConfig, int] = {}
        self._config_list: List[SensorConfig] = []
        self._capacities = np.empty(0, dtype=np.int64)
        self._data: Optional[np.ndarray] = None
        self._times: Optional[np.ndarray] = None
        self._counts = np.zeros(num_devices, dtype=np.int64)
        self._positions = np.zeros(num_devices, dtype=np.int64)
        self._config_ids = np.full(num_devices, -1, dtype=np.int64)

    @property
    def num_devices(self) -> int:
        """Number of device rings in the bank."""
        return self._num_devices

    def reset(self) -> None:
        """Empty every ring while keeping the allocations and interning.

        Reusable fleet runtimes call this between runs: the per-device
        ring state (counts, write positions, active configuration ids)
        is rewound, but the interned configuration table and the backing
        sample/time arrays — the expensive part of construction — are
        kept, since stale samples are unreachable once the counts are
        zero.
        """
        self._counts.fill(0)
        self._positions.fill(0)
        self._config_ids.fill(-1)

    @property
    def counts(self) -> np.ndarray:
        """Buffered sample count per device (live array — do not mutate)."""
        return self._counts

    def _intern(self, config: SensorConfig) -> int:
        config_id = self._configs.get(config)
        if config_id is None:
            config_id = len(self._config_list)
            self._configs[config] = config_id
            self._config_list.append(config)
            capacity = _ring_capacity(self._window_duration_s, config)
            self._capacities = np.append(self._capacities, capacity)
            width = 0 if self._data is None else self._data.shape[1]
            if capacity > width:
                data = np.empty((self._num_devices, capacity, 3), dtype=self._dtype)
                times = np.empty((self._num_devices, capacity))
                if self._data is not None:
                    data[:, :width] = self._data
                    times[:, :width] = self._times
                self._data = data
                self._times = times
        return config_id

    def push_group(
        self,
        rows: np.ndarray,
        samples: np.ndarray,
        times_s: np.ndarray,
        config: SensorConfig,
    ) -> np.ndarray:
        """Push one stacked acquisition into every ring of a group.

        Parameters
        ----------
        rows:
            Device indices of the configuration group.
        samples:
            Stacked acquisition of shape ``(len(rows), samples, 3)``.
        times_s:
            Shared sample time grid of the acquisition.
        config:
            The configuration the samples were acquired under.

        Returns
        -------
        numpy.ndarray
            The subset of ``rows`` whose ring was flushed because the
            device switched configuration (callers reset their chunk
            bookkeeping for exactly these devices).
        """
        rows = np.asarray(rows)
        config_id = self._intern(config)
        capacity = int(self._capacities[config_id])
        changed = rows[self._config_ids[rows] != config_id]
        if changed.size:
            self._counts[changed] = 0
            self._positions[changed] = 0
            self._config_ids[changed] = config_id
        num_new = samples.shape[1]
        if num_new >= capacity:
            self._data[rows, :capacity] = samples[:, num_new - capacity :]
            self._times[rows, :capacity] = times_s[None, num_new - capacity :]
            self._positions[rows] = 0
            self._counts[rows] = capacity
            return changed
        positions = self._positions[rows]
        # Devices that entered the configuration together write at the
        # same ring offset, so a group's positions take only a handful
        # of distinct values — contiguous slice assignments (split at
        # the wrap seam) per cohort beat a fancy-indexed scatter.
        cohorts = np.unique(positions)
        if cohorts.size <= 32:
            for start in cohorts:
                start = int(start)
                members = (
                    rows
                    if cohorts.size == 1
                    else rows[positions == start]
                )
                block = (
                    samples
                    if cohorts.size == 1
                    else samples[positions == start]
                )
                head = min(num_new, capacity - start)
                self._data[members, start : start + head] = block[:, :head]
                self._times[members, start : start + head] = times_s[None, :head]
                if num_new > head:
                    self._data[members, : num_new - head] = block[:, head:]
                    self._times[members, : num_new - head] = times_s[None, head:]
        else:
            slots = (positions[:, None] + np.arange(num_new)) % capacity
            self._data[rows[:, None], slots] = samples
            self._times[rows[:, None], slots] = times_s[None, :]
        self._positions[rows] = (positions + num_new) % capacity
        self._counts[rows] = np.minimum(self._counts[rows] + num_new, capacity)
        return changed

    def window(self, device: int) -> Tuple[np.ndarray, np.ndarray]:
        """Buffered ``(samples, times)`` of one device, oldest first.

        Used by the exact feature-extraction fallback for warm-up
        windows; steady-state windows never leave the stacked arrays.

        Raises
        ------
        RuntimeError
            If the device's ring is empty.
        """
        count = int(self._counts[device])
        if count == 0:
            raise RuntimeError(
                f"cannot read a window from device {device}'s empty ring"
            )
        capacity = int(self._capacities[self._config_ids[device]])
        start = (int(self._positions[device]) - count) % capacity
        if start + count <= capacity:
            samples = self._data[device, start : start + count].copy()
            times = self._times[device, start : start + count].copy()
        else:
            split = capacity - start
            samples = np.concatenate(
                (self._data[device, start:capacity], self._data[device, : count - split])
            )
            times = np.concatenate(
                (self._times[device, start:capacity], self._times[device, : count - split])
            )
        return samples, times

"""Fleet-wide measurement-noise generation for the batched sense path.

Per-device noise streams are what kept one Python call per device per
tick on the fleet hot path: every simulated accelerometer draws its
measurement noise from a private generator, so the stacked acquisition
pass (:func:`repro.sensors.imu.read_windows_stacked_raw`) still looped
``rngs[index].normal(...)`` over the whole configuration group.

:class:`NoiseBank` removes that loop while keeping the streams private.
Every device owns one **counter-based** bit generator
(:class:`numpy.random.Philox`), keyed by a
:class:`numpy.random.SeedSequence` child derived from the device's own
master stream (see :func:`repro.utils.rng.derive_seed_sequences`).  A
device's noise is therefore a pure function of its own seed — never of
fleet composition, configuration grouping, engine choice or shard
layout — which is what makes ``noise="batched"`` runs bit-identical
across :class:`~repro.exec.engine.StepEngine` paths and shard counts.

The per-call Python is amortised through a pooled layout: each device's
Philox stream is materialised ``POOL_VALUES`` standard normals at a
time into one shared ``(devices, POOL_VALUES)`` array, and a tick's
``(devices, samples, 3)`` noise block for a configuration group is then
a single vectorised gather-and-scale over the pool.  Refills touch a
device only once every ``POOL_VALUES / values_per_tick`` ticks (for the
paper's configurations, one refill per ~3-30 simulated seconds).

The pooled consumption discipline is part of the mode's determinism
contract: a device consumes its stream strictly in order, and when the
pool tail is too short for a full acquisition the tail is discarded and
the pool refilled.  Both depend only on the device's own configuration
history, so every engine replays the identical sequence.  So is the
pool precision: streams are materialised as float32 standard normals
(the generator's native single-precision ziggurat — roughly twice the
fill rate and half the memory) and the standard-deviation scaling is
rounded back to float32, so every consumer sees the identical
single-precision value regardless of gather path (the float64 upcast
happens only when the noise is added to the clean signal).  Single
precision is ~five decimal digits finer than the accelerometer's ADC
step, so the digitised samples are statistically indistinguishable
from double-precision noise.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.utils.rng import derive_seed_sequences
from repro.utils.validation import check_positive_int

#: Standard normals materialised per device per refill.  The value is a
#: *contract*, not a tuning knob: the pool boundary decides which draws
#: are discarded at a refill, so two runs only replay the same noise if
#: they share the pool length.  2048 float32 values (8 KiB per device,
#: ~80 MB for a 10k-device fleet) cover at least six classification
#: windows of the fastest Table I configuration per refill.
POOL_VALUES: int = 2048


class NoiseBank:
    """One counter-based noise stream per device, filled in batches.

    Parameters
    ----------
    seed_sequences:
        One :class:`numpy.random.SeedSequence` per device keying that
        device's :class:`numpy.random.Philox` stream.  Use
        :meth:`from_rngs` to derive them from per-device master
        generators.
    pool_values:
        Pool length override for tests; production callers must keep
        the default (see :data:`POOL_VALUES`).
    """

    def __init__(
        self,
        seed_sequences: Sequence[np.random.SeedSequence],
        pool_values: int = POOL_VALUES,
    ) -> None:
        check_positive_int(pool_values, "pool_values")
        # The sequences are kept so :meth:`reset` can rewind every
        # stream to its origin without re-spawning children (spawning
        # advances the parent's child counter, which would silently
        # change the streams of a reused runtime).
        self._seed_sequences: List[np.random.SeedSequence] = list(seed_sequences)
        self._generators: List[np.random.Generator] = [
            np.random.Generator(np.random.Philox(seed_seq))
            for seed_seq in self._seed_sequences
        ]
        self._pool_values = int(pool_values)
        self._pool = np.empty(
            (len(self._generators), self._pool_values), dtype=np.float32
        )
        # An exhausted cursor forces a refill on first use, so pool
        # memory is only ever filled for devices that actually sense.
        self._cursors = np.full(len(self._generators), self._pool_values)
        #: Device-stream pool refills performed so far (observability
        #: counter; one refill materialises ``pool_values`` normals).
        self.refills = 0
        #: Acquisitions that bypassed the pool because a single tick
        #: needed more values than one pool holds.
        self.pool_bypasses = 0

    @classmethod
    def from_rngs(cls, rngs: Sequence[np.random.Generator]) -> "NoiseBank":
        """Derive one Philox stream per device from its master generator.

        Spawning a seed-sequence child does not consume draws from the
        master stream, so building a bank leaves signal realisation and
        sensor-bias draws untouched — ``noise="batched"`` changes only
        the measurement noise.
        """
        return cls([derive_seed_sequences(rng, 1)[0] for rng in rngs])

    @property
    def num_devices(self) -> int:
        """Number of device streams in the bank."""
        return len(self._generators)

    @property
    def pool_values(self) -> int:
        """Standard normals materialised per device per refill."""
        return self._pool_values

    def reset(self) -> None:
        """Rewind every device stream to its origin.

        Reusable fleet runtimes call this between runs: the Philox
        generators are recreated from the stored seed sequences (a
        counter-based stream restarts exactly), the cursors are marked
        exhausted so the first acquisition refills from the rewound
        streams, and the observability counters start over.  The pool
        array itself is reused — its stale contents are never consumed
        before a refill overwrites them.
        """
        self._generators = [
            np.random.Generator(np.random.Philox(seed_seq))
            for seed_seq in self._seed_sequences
        ]
        self._cursors.fill(self._pool_values)
        self.refills = 0
        self.pool_bypasses = 0

    def normal(
        self,
        rows: np.ndarray,
        num_samples: int,
        stds: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Noise block for one configuration group's acquisition.

        Parameters
        ----------
        rows:
            Device indices of the group (any order, no duplicates).
        num_samples:
            Output samples acquired this tick under the group's
            configuration; each device consumes ``num_samples * 3``
            values from its stream.
        stds:
            Per-device output-sample noise standard deviation, parallel
            to ``rows``.
        out:
            Optional preallocated ``(len(rows), num_samples, 3)``
            destination.

        Returns
        -------
        numpy.ndarray
            Array of shape ``(len(rows), num_samples, 3)``: each
            device's next ``num_samples * 3`` stream values scaled by
            its standard deviation.
        """
        rows = np.asarray(rows)
        count = int(num_samples) * 3
        # float32 stds (the single-precision lane) are kept as given so
        # the scaling below runs a float32 loop; everything else takes
        # the historical float64 spelling.
        stds = np.asarray(stds)
        if stds.dtype != np.float32:
            stds = stds.astype(np.float64, copy=False)
        if stds.shape != (rows.shape[0],):
            raise ValueError(
                f"stds must be parallel to rows, got {stds.shape} for "
                f"{rows.shape[0]} devices"
            )
        if count > self._pool_values:
            # Oversized acquisitions (sampling rates beyond the pool
            # budget) bypass the pool entirely; the stream stays the
            # device's own, just unpooled.
            values = np.empty((rows.shape[0], count), dtype=np.float32)
            for index, device in enumerate(rows):
                values[index] = self._generators[device].standard_normal(
                    count, dtype=np.float32
                )
            self.pool_bypasses += rows.shape[0]
        else:
            cursors = self._cursors[rows]
            exhausted = rows[cursors + count > self._pool_values]
            for device in exhausted:
                self._pool[device] = self._generators[device].standard_normal(
                    self._pool_values, dtype=np.float32
                )
            if exhausted.size:
                self.refills += int(exhausted.size)
                self._cursors[exhausted] = 0
                cursors = self._cursors[rows]
            # Devices that entered the active configuration together
            # consume in lock step, so a group's cursors take only a
            # handful of distinct values — one contiguous column slice
            # per cursor cohort beats a two-dimensional gather.
            cohorts = np.unique(cursors)
            if cohorts.size == 1:
                start = int(cohorts[0])
                values = self._pool[rows, start : start + count]
            elif cohorts.size <= 32:
                values = np.empty((rows.shape[0], count), dtype=np.float32)
                for start in cohorts:
                    members = np.flatnonzero(cursors == start)
                    values[members] = self._pool[
                        rows[members], int(start) : int(start) + count
                    ]
            else:
                values = self._pool[rows[:, None], cursors[:, None] + np.arange(count)]
            self._cursors[rows] += count
        block = values.reshape(rows.shape[0], num_samples, 3)
        # The gather above always copies, so scaling in place is safe
        # and saves one (devices, samples, 3) temporary.  Every path
        # scales INTO the float32 block — precision is part of the
        # stream contract, so no caller may see a double-rounded value.
        np.multiply(block, stds[:, None, None], out=block)
        if out is None:
            return block
        np.copyto(out, block)
        return out

"""Behavioural simulator of a BMI160-class 3-axis accelerometer.

The simulator reproduces the aspects of the real part that matter to
AdaSense's accuracy/power trade-off:

* **Output data rate.** The sensor reports one 3-axis sample every
  ``1 / sampling_hz`` seconds.
* **Averaging window.** Each output sample is the mean of
  ``averaging_window`` internal sub-samples acquired at the internal
  conversion rate immediately before the sample instant.  Longer windows
  low-pass the signal (attenuating gait harmonics slightly) and reduce
  noise; shorter windows are noisier but cheaper in low-power mode.
* **Noise.** Per-sub-sample white noise with standard deviation
  ``base_noise_std_ms2`` which, after averaging, shrinks as
  ``1 / sqrt(averaging_window)``.
* **Quantisation and clipping.** Output values are clipped to the
  configured full-scale range and quantised to the ADC resolution.

The *signal* being measured is any object exposing
``evaluate_windowed(times_s, window_s) -> (n, 3)`` — in practice a
:class:`repro.datasets.synthetic.ScheduledSignal` or a single
:class:`repro.datasets.synthetic.ActivityRealization`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.core.config import SensorConfig
from repro.utils.constants import GRAVITY_MS2
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_non_negative, check_positive

#: Default internal conversion rate of the simulated IMU, in hertz.  One
#: internal sub-sample takes ``1 / INTERNAL_RATE_HZ`` seconds, so an
#: averaging window of ``W`` sub-samples spans ``W / INTERNAL_RATE_HZ``
#: seconds of signal.
DEFAULT_INTERNAL_RATE_HZ: float = 1600.0


def _sample_times(
    end_time_s: float, duration_s: float, config: "SensorConfig"
) -> np.ndarray:
    """Validated output-sample time grid shared by both acquisition paths.

    Single source of truth for the window's sample instants, so the
    scalar :meth:`SimulatedAccelerometer.read_window` and the stacked
    :func:`read_windows_stacked` cannot drift apart.
    """
    check_positive(duration_s, "duration_s")
    if end_time_s - duration_s < -1e-9:
        raise ValueError(
            "window starts before time zero: "
            f"end_time_s={end_time_s}, duration_s={duration_s}"
        )
    num_samples = config.samples_in(duration_s)
    period = 1.0 / config.sampling_hz
    start = end_time_s - duration_s
    times = start + period * np.arange(1, num_samples + 1)
    return np.clip(times, 0.0, None)


def _digitise(noisy, bias, full_scale, lsb):
    """Bias, clip and quantise noisy samples — the sensor's output stage.

    Shared by both acquisition paths (all operations are elementwise,
    so scalar and stacked invocations are bit-identical); the argument
    order *is* the contract: bias is added after the noise, then the
    result is clipped to the full-scale range and quantised to the ADC
    step.
    """
    biased = noisy + bias
    clipped = np.clip(biased, -full_scale, full_scale)
    return np.round(clipped / lsb) * lsb


def _digitise_inplace(noisy, bias, full_scale, lsb):
    """:func:`_digitise` overwriting its input — same value sequence
    (add bias, clip, divide, round, multiply), zero temporaries.  The
    batched acquisition path owns its noisy stack outright, so the
    output stage may recycle it."""
    np.add(noisy, bias, out=noisy)
    np.clip(noisy, -full_scale, full_scale, out=noisy)
    np.divide(noisy, lsb, out=noisy)
    np.round(noisy, out=noisy)
    np.multiply(noisy, lsb, out=noisy)
    return noisy


class ContinuousSignal(Protocol):
    """Protocol for signals the simulated accelerometer can sample."""

    def evaluate_windowed(self, times_s: np.ndarray, window_s: float) -> np.ndarray:
        """Average of the signal over ``[t - window_s, t]`` for each time."""
        ...  # pragma: no cover - protocol definition


@dataclass(frozen=True)
class NoiseModel:
    """Noise, bias and quantisation behaviour of the simulated accelerometer.

    Parameters
    ----------
    base_noise_std_ms2:
        Standard deviation of the white noise on one *internal*
        sub-sample, in m/s^2.  After averaging ``W`` sub-samples the
        output-sample noise is ``base_noise_std_ms2 / sqrt(W)``.
    bias_std_ms2:
        Standard deviation of the static per-axis offset drawn once per
        sensor instance (models imperfect calibration).
    full_scale_g:
        Symmetric full-scale range in multiples of g (the BMI160 default
        range of +/-2 g is used by the paper's setup).
    resolution_bits:
        ADC resolution; output samples are quantised to
        ``2 * full_scale / 2**resolution_bits`` steps.
    """

    base_noise_std_ms2: float = 1.4
    bias_std_ms2: float = 0.05
    full_scale_g: float = 2.0
    resolution_bits: int = 16
    #: Per-instance cache of output-sample noise per averaging window.
    #: A fleet device's model is queried once per simulated second with
    #: one of a handful of Table I averaging windows, so this stays tiny
    #: (unlike a module-level cache, which the per-device continuous
    #: noise-scale draws would thrash).  Derived state: excluded from
    #: equality and repr.
    _std_cache: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        check_non_negative(self.base_noise_std_ms2, "base_noise_std_ms2")
        check_non_negative(self.bias_std_ms2, "bias_std_ms2")
        check_positive(self.full_scale_g, "full_scale_g")
        if self.resolution_bits < 1 or self.resolution_bits > 32:
            raise ValueError(
                f"resolution_bits must be between 1 and 32, got {self.resolution_bits}"
            )

    @property
    def full_scale_ms2(self) -> float:
        """Full-scale range expressed in m/s^2."""
        return self.full_scale_g * GRAVITY_MS2

    @property
    def lsb_ms2(self) -> float:
        """Size of one quantisation step in m/s^2."""
        return 2.0 * self.full_scale_ms2 / (2.0**self.resolution_bits)

    def output_noise_std(self, averaging_window: int) -> float:
        """Noise standard deviation of one output sample, in m/s^2."""
        if averaging_window < 1:
            raise ValueError(
                f"averaging_window must be at least 1, got {averaging_window}"
            )
        std = self._std_cache.get(averaging_window)
        if std is None:
            std = self.base_noise_std_ms2 / float(np.sqrt(averaging_window))
            self._std_cache[averaging_window] = std
        return std


@dataclass(frozen=True)
class SensorWindow:
    """A batch of accelerometer samples returned by the simulator.

    Attributes
    ----------
    samples:
        Array of shape ``(n, 3)`` in m/s^2.
    times_s:
        Sample time stamps (end of each sample's averaging window).
    config:
        The sensor configuration the samples were acquired under.
    """

    samples: np.ndarray
    times_s: np.ndarray
    config: SensorConfig

    def __post_init__(self) -> None:
        if self.samples.ndim != 2 or self.samples.shape[1] != 3:
            raise ValueError(
                f"samples must have shape (n, 3), got {self.samples.shape}"
            )
        if self.times_s.shape != (self.samples.shape[0],):
            raise ValueError(
                "times_s must have one entry per sample, got "
                f"{self.times_s.shape} for {self.samples.shape[0]} samples"
            )

    @property
    def num_samples(self) -> int:
        """Number of samples in the window."""
        return int(self.samples.shape[0])

    @property
    def duration_s(self) -> float:
        """Time spanned by the window in seconds."""
        if self.num_samples == 0:
            return 0.0
        return float(self.times_s[-1] - self.times_s[0]) + 1.0 / self.config.sampling_hz

    @property
    def sampling_hz(self) -> float:
        """Output data rate the window was captured at."""
        return self.config.sampling_hz


class SimulatedAccelerometer:
    """Samples a continuous activity signal the way a duty-cycled IMU would.

    Parameters
    ----------
    signal:
        The continuous signal to measure (anything implementing
        ``evaluate_windowed``).
    noise:
        Noise/quantisation model; defaults to a BMI160-flavoured
        :class:`NoiseModel`.
    internal_rate_hz:
        Internal conversion rate determining how much wall-clock time an
        averaging window of ``W`` sub-samples spans.
    seed:
        Seed for the measurement noise stream.
    """

    def __init__(
        self,
        signal: ContinuousSignal,
        noise: Optional[NoiseModel] = None,
        internal_rate_hz: float = DEFAULT_INTERNAL_RATE_HZ,
        seed: SeedLike = None,
    ) -> None:
        check_positive(internal_rate_hz, "internal_rate_hz")
        self._signal = signal
        self._noise = noise if noise is not None else NoiseModel()
        self._internal_rate_hz = float(internal_rate_hz)
        self._rng = as_rng(seed)
        self._bias = self._rng.normal(0.0, self._noise.bias_std_ms2, size=3)

    @property
    def signal(self) -> ContinuousSignal:
        """The signal this sensor is attached to."""
        return self._signal

    @property
    def noise_model(self) -> NoiseModel:
        """The sensor's noise/quantisation model."""
        return self._noise

    @property
    def internal_rate_hz(self) -> float:
        """Internal conversion rate in hertz."""
        return self._internal_rate_hz

    @property
    def bias_ms2(self) -> np.ndarray:
        """The static per-axis bias drawn for this sensor instance."""
        return self._bias.copy()

    def averaging_window_duration(self, config: SensorConfig) -> float:
        """Wall-clock span of the averaging window for ``config``, in seconds.

        The window cannot exceed the output sample period: a configuration
        asking for more sub-samples than fit between two output samples
        simply averages over the full sample period (this is how the
        normal-mode, always-on configurations behave).
        """
        window = config.averaging_window / self._internal_rate_hz
        return float(min(window, 1.0 / config.sampling_hz))

    def read_window(
        self,
        end_time_s: float,
        duration_s: float,
        config: SensorConfig,
        rng: SeedLike = None,
        noise: Optional[np.ndarray] = None,
    ) -> SensorWindow:
        """Acquire ``duration_s`` seconds of samples ending at ``end_time_s``.

        Parameters
        ----------
        end_time_s:
            Time stamp of the last sample in the window.
        duration_s:
            Length of the acquisition in seconds.
        config:
            Sampling frequency / averaging window to acquire under.
        rng:
            Optional explicit generator for the noise draw (defaults to
            the sensor's own stream).
        noise:
            Optional precomputed ``(samples, 3)`` measurement-noise
            block (already scaled to the output-sample standard
            deviation).  The execution engine's ``noise="batched"``
            mode passes the device's
            :class:`repro.sensors.noise_bank.NoiseBank` draw here so a
            scalar acquisition consumes exactly the same stream values
            as a stacked one.

        Returns
        -------
        SensorWindow
            The acquired batch, ``round(duration_s * sampling_hz)``
            samples long.
        """
        times = _sample_times(end_time_s, duration_s, config)

        window_span = self.averaging_window_duration(config)
        clean = self._signal.evaluate_windowed(times, window_span)

        if noise is None:
            generator = self._rng if rng is None else as_rng(rng)
            noise_std = self._noise.output_noise_std(config.averaging_window)
            noise = generator.normal(0.0, noise_std, size=clean.shape)
        elif noise.shape != clean.shape:
            raise ValueError(
                f"noise must have shape {clean.shape}, got {noise.shape}"
            )
        quantised = _digitise(
            clean + noise,
            self._bias[None, :],
            self._noise.full_scale_ms2,
            self._noise.lsb_ms2,
        )
        return SensorWindow(samples=quantised, times_s=times, config=config)

    def read_second(
        self, end_time_s: float, config: SensorConfig, rng: SeedLike = None
    ) -> SensorWindow:
        """Convenience wrapper acquiring exactly one second of samples."""
        return self.read_window(end_time_s, 1.0, config, rng=rng)


class SensorStatics:
    """Per-device output-stage constants of a fleet, as stacked arrays.

    A sensor's bias, full-scale range, quantisation step and base noise
    level never change during a run, yet the stacked acquisition path
    re-read them through one Python attribute walk per device per tick.
    Built once per run, this cache turns the output stage of a whole
    configuration group into pure array slicing; per-window noise
    standard deviations (``base / sqrt(averaging_window)``) are interned
    per averaging window on first use.

    Parameters
    ----------
    sensors:
        Every device's simulated accelerometer, in fleet order.
    """

    def __init__(self, sensors: Sequence["SimulatedAccelerometer"]) -> None:
        self.biases = np.array([sensor._bias for sensor in sensors])
        self.full_scales = np.array(
            [sensor._noise.full_scale_ms2 for sensor in sensors]
        )
        self.lsbs = np.array([sensor._noise.lsb_ms2 for sensor in sensors])
        self._base_stds = np.array(
            [sensor._noise.base_noise_std_ms2 for sensor in sensors]
        )
        self._std_cache: Dict[int, np.ndarray] = {}
        rates = np.array([sensor._internal_rate_hz for sensor in sensors])
        #: The fleet's shared internal conversion rate, or ``None`` for
        #: heterogeneous hardware.  A uniform rate means every sensor
        #: shares one averaging-window span per configuration, so the
        #: stacked reader can skip the per-device span grouping.
        self.uniform_internal_rate_hz: Optional[float] = (
            float(rates[0]) if rates.size and (rates == rates[0]).all() else None
        )

    def noise_stds(self, averaging_window: int) -> np.ndarray:
        """Output-sample noise standard deviation per device.

        Elementwise identical to querying every device's
        :meth:`NoiseModel.output_noise_std`.
        """
        stds = self._std_cache.get(averaging_window)
        if stds is None:
            if averaging_window < 1:
                raise ValueError(
                    f"averaging_window must be at least 1, got {averaging_window}"
                )
            stds = self._base_stds / float(np.sqrt(averaging_window))
            self._std_cache[averaging_window] = stds
        return stds


def read_windows_stacked(
    sensors: Sequence["SimulatedAccelerometer"],
    end_time_s: float,
    duration_s: float,
    config: SensorConfig,
    rngs: Sequence[np.random.Generator],
) -> List[SensorWindow]:
    """Acquire the same window interval from many sensors in one pass.

    All sensors share the configuration and the time grid, so the fleet
    engine can compute the sample times once, evaluate every device's
    clean signal with one stacked trigonometric pass (see
    :func:`repro.datasets.synthetic.evaluate_realizations_windowed`) and
    apply bias, clipping and quantisation to the whole ``(devices,
    samples, 3)`` stack at once.  Per-device noise is still drawn from
    each device's own generator with exactly the call
    :meth:`SimulatedAccelerometer.read_window` makes, so the returned
    windows are bit-for-bit identical to reading each sensor
    individually — the property the engine equivalence tests pin down.

    Parameters
    ----------
    sensors:
        The simulated accelerometers to read, one per device.
    end_time_s, duration_s, config:
        As in :meth:`SimulatedAccelerometer.read_window`.
    rngs:
        One noise generator per sensor (parallel to ``sensors``).
    """
    quantised, times = read_windows_stacked_raw(
        sensors, end_time_s=end_time_s, duration_s=duration_s, config=config,
        rngs=rngs,
    )
    return [
        SensorWindow(samples=quantised[index], times_s=times, config=config)
        for index in range(len(sensors))
    ]


def read_windows_stacked_raw(
    sensors: Sequence["SimulatedAccelerometer"],
    end_time_s: float,
    duration_s: float,
    config: SensorConfig,
    rngs: Optional[Sequence[np.random.Generator]] = None,
    *,
    noise_bank=None,
    bank_rows: Optional[np.ndarray] = None,
    statics: Optional[SensorStatics] = None,
    tables=None,
    signals: Optional[Sequence] = None,
    table_rows: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """The raw spelling of :func:`read_windows_stacked`.

    Returns the acquired samples as one ``(devices, samples, 3)`` stack
    plus the shared time grid, without wrapping each device's rows in a
    :class:`SensorWindow`.  The execution engine's banked path consumes
    the stack directly (buffers hold row views, feature extraction and
    intensity switching slice the stack), which removes one validated
    container object per device per tick from the fleet hot path.  The
    sample values are exactly those of :func:`read_windows_stacked`.

    Two acquisition spellings share this body:

    * ``rngs`` — one private generator per sensor, drawn in a Python
      loop exactly as :meth:`SimulatedAccelerometer.read_window` would
      (the ``noise="per_device"`` reference mode);
    * ``noise_bank`` + ``bank_rows`` — one pooled
      :class:`repro.sensors.noise_bank.NoiseBank` draw for the whole
      group (the ``noise="batched"`` mode), optionally with a
      :class:`SensorStatics` cache replacing the per-device output-stage
      walk and a
      :class:`repro.datasets.synthetic.StackedEvaluationCache` reusing
      the clean-signal component tables across ticks (``signals``
      optionally hands the cache the group's signal objects directly,
      sparing one attribute walk per device).

    ``table_rows`` optionally splits the signal-table keying from the
    noise-stream keying: fused multi-variant campaigns run several
    *virtual* devices per physical device, each with its own noise
    stream (``bank_rows``) but one shared clean signal — passing the
    physical row per group member here lets the cache keep one row per
    physical device and serve duplicated members by gathering.
    Defaults to ``bank_rows`` (one row per device, the fleet case).
    """
    from repro.datasets.synthetic import evaluate_realizations_windowed

    num_devices = len(sensors)
    if noise_bank is None:
        if rngs is None or num_devices != len(rngs):
            raise ValueError(
                f"sensors and rngs must be parallel, got {num_devices} sensors "
                f"and {0 if rngs is None else len(rngs)} generators"
            )
    elif bank_rows is None or num_devices != len(bank_rows):
        raise ValueError(
            f"sensors and bank_rows must be parallel, got {num_devices} "
            f"sensors and {0 if bank_rows is None else len(bank_rows)} rows"
        )
    times = _sample_times(end_time_s, duration_s, config)
    num_samples = times.shape[0]

    uniform_span = (
        statics is not None
        and statics.uniform_internal_rate_hz is not None
        and num_devices > 0
    )
    if uniform_span and tables is not None and bank_rows is not None:
        # Fully cached clean-signal path: every device shares one
        # averaging-window span, and the signal-table cache revalidates
        # the whole group against its stored bout intervals with two
        # array comparisons — no per-device lookups at all.
        span = sensors[0].averaging_window_duration(config)
        clean = tables.evaluate_signals(
            [sensor._signal for sensor in sensors] if signals is None else signals,
            np.asarray(bank_rows if table_rows is None else table_rows),
            times,
            span,
        )
    else:
        clean = np.empty((num_devices, num_samples, 3))
        # Group devices by averaging-window span (identical for sensors
        # that share an internal rate — the engine's normal case) and,
        # within each span, stack the devices whose window falls inside
        # a single bout.
        spans: dict
        if uniform_span:
            spans = {
                sensors[0].averaging_window_duration(config): list(
                    range(num_devices)
                )
            }
        else:
            spans = {}
            for index, sensor in enumerate(sensors):
                spans.setdefault(
                    sensor.averaging_window_duration(config), []
                ).append(index)
        for span, indices in spans.items():
            stacked_indices: List[int] = []
            realizations = []
            for index in indices:
                signal = sensors[index]._signal
                spanning = getattr(signal, "realization_spanning", None)
                realization = spanning(times) if spanning is not None else None
                if realization is None:
                    clean[index] = signal.evaluate_windowed(times, span)
                else:
                    stacked_indices.append(index)
                    realizations.append(realization)
            if stacked_indices:
                if tables is not None:
                    keyed_rows = bank_rows if table_rows is None else table_rows
                    clean[stacked_indices] = tables.evaluate(
                        realizations,
                        times,
                        span,
                        rows=(
                            np.asarray(keyed_rows)[stacked_indices]
                            if keyed_rows is not None
                            else None
                        ),
                    )
                else:
                    clean[stacked_indices] = evaluate_realizations_windowed(
                        realizations, times, span
                    )

    if noise_bank is not None:
        rows = np.asarray(bank_rows)
        if statics is not None:
            stds = statics.noise_stds(config.averaging_window)[rows]
            biases = statics.biases[rows]
            full_scales = statics.full_scales[rows][:, None, None]
            lsbs = statics.lsbs[rows][:, None, None]
            if clean.dtype == np.float32:
                # Single-precision lane: casting the output-stage
                # constants keeps the noise scaling and the digitisation
                # chain in float32 loops end to end (float64 operands
                # would silently promote every ufunc pass).
                stds = stds.astype(np.float32)
                biases = biases.astype(np.float32)
                full_scales = full_scales.astype(np.float32)
                lsbs = lsbs.astype(np.float32)
        else:
            stds = np.array(
                [
                    sensor._noise.output_noise_std(config.averaging_window)
                    for sensor in sensors
                ]
            )
            biases = np.array([sensor._bias for sensor in sensors])
            full_scales = np.array(
                [sensor._noise.full_scale_ms2 for sensor in sensors]
            )[:, None, None]
            lsbs = np.array(
                [sensor._noise.lsb_ms2 for sensor in sensors]
            )[:, None, None]
        np.add(clean, noise_bank.normal(rows, num_samples, stds), out=clean)
        quantised = _digitise_inplace(
            clean, biases[:, None, :], full_scales, lsbs
        )
        return quantised, times
    else:
        noise = np.empty_like(clean)
        biases = np.empty((num_devices, 3))
        full_scales = np.empty((num_devices, 1, 1))
        lsbs = np.empty((num_devices, 1, 1))
        for index, sensor in enumerate(sensors):
            model = sensor._noise
            noise[index] = rngs[index].normal(
                0.0,
                model.output_noise_std(config.averaging_window),
                size=(num_samples, 3),
            )
            biases[index] = sensor._bias
            full_scales[index] = model.full_scale_ms2
            lsbs[index] = model.lsb_ms2
        noisy = clean + noise

    quantised = _digitise(noisy, biases[:, None, :], full_scales, lsbs)
    return quantised, times

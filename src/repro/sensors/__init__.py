"""Simulated sensing hardware.

This subpackage stands in for the Bosch BMI160 accelerometer used in the
paper's testbed.  It contains:

* :mod:`repro.sensors.imu` — a behavioural accelerometer simulator that
  samples a continuous activity signal at a configurable output data
  rate and averaging window, applying the noise and quantisation
  behaviour the real part exhibits;
* :mod:`repro.sensors.buffer` — the two-second, one-second-overlap
  sample buffer that feeds the HAR pipeline (Fig. 1).
"""

from repro.sensors.buffer import SampleBuffer
from repro.sensors.imu import NoiseModel, SensorWindow, SimulatedAccelerometer

__all__ = [
    "NoiseModel",
    "SensorWindow",
    "SimulatedAccelerometer",
    "SampleBuffer",
]

"""Simulated sensing hardware.

This subpackage stands in for the Bosch BMI160 accelerometer used in the
paper's testbed.  It contains:

* :mod:`repro.sensors.imu` — a behavioural accelerometer simulator that
  samples a continuous activity signal at a configurable output data
  rate and averaging window, applying the noise and quantisation
  behaviour the real part exhibits;
* :mod:`repro.sensors.buffer` — the two-second, one-second-overlap
  sample buffer that feeds the HAR pipeline (Fig. 1), ring-backed per
  device (:class:`~repro.sensors.buffer.SampleBuffer`) or fleet-wide
  (:class:`~repro.sensors.buffer.RingBufferBank`);
* :mod:`repro.sensors.noise_bank` — pooled counter-based measurement
  noise streams (one Philox stream per device) for the batched
  acquisition mode.
"""

from repro.sensors.buffer import RingBufferBank, SampleBuffer
from repro.sensors.imu import NoiseModel, SensorWindow, SimulatedAccelerometer
from repro.sensors.noise_bank import NoiseBank

__all__ = [
    "NoiseBank",
    "NoiseModel",
    "RingBufferBank",
    "SensorWindow",
    "SimulatedAccelerometer",
    "SampleBuffer",
]

"""Heterogeneous virtual-device populations for fleet simulation.

A *device profile* freezes everything that makes one simulated wearable
different from the next: the user's behaviour (a concrete activity
schedule drawn from a scenario), the adaptive controller and its knobs,
the sensor's noise level, the accelerometer's current draw, the battery
it runs from, and the seed of its private random stream.  A *population*
is an immutable collection of profiles generated deterministically from
one master seed — regenerating a population with the same arguments
always yields bit-identical devices, which is what lets the batched
fleet engine be validated against per-device sequential simulation.

Scenario heterogeneity combines the Fig. 7 user-activity settings
(``high`` / ``medium`` / ``low`` change rates) with the lifestyle
archetypes of :class:`repro.datasets.scenarios.ScenarioArchetype`
(elderly, post-op rehab, athlete, office worker, night shift).
Controller heterogeneity spans SPOT, SPOT-with-confidence, the static
always-on baseline and the intensity-based switching policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.baselines.intensity_based import (
    DEFAULT_LOW_INTENSITY_CONFIG,
    IntensityController,
    IntensityThresholds,
    calibrate_intensity_thresholds,
)
from repro.core.activities import Activity
from repro.core.config import HIGH_POWER_CONFIG, get_config, intern_config_table
from repro.core.controller import (
    AdaptiveController,
    SpotController,
    SpotWithConfidenceController,
    StaticController,
)
from repro.datasets.scenarios import (
    ActivitySetting,
    Schedule,
    ScenarioArchetype,
    make_archetype_schedule,
    make_setting_schedule,
    schedule_duration,
)
from repro.energy.accelerometer import AccelerometerPowerModel
from repro.energy.battery import Battery
from repro.sensors.imu import NoiseModel
from repro.utils.rng import SeedLike, as_rng, stable_seed_from
from repro.utils.validation import check_positive, check_positive_int

#: Controller kinds a fleet device may run.
CONTROLLER_KINDS: Tuple[str, ...] = ("spot", "spot_confidence", "static", "intensity")

#: Scenario names a fleet device may follow: the three Fig. 7 settings
#: plus the lifestyle archetypes.
SCENARIO_NAMES: Tuple[str, ...] = tuple(
    setting.value for setting in ActivitySetting
) + tuple(archetype.value for archetype in ScenarioArchetype)


def make_scenario_schedule(
    scenario: str, total_duration_s: float, seed: SeedLike = None
) -> Schedule:
    """Generate a schedule for any named scenario (setting or archetype)."""
    check_positive(total_duration_s, "total_duration_s")
    if scenario in tuple(setting.value for setting in ActivitySetting):
        return make_setting_schedule(
            ActivitySetting(scenario), total_duration_s=total_duration_s, seed=seed
        )
    if scenario in tuple(archetype.value for archetype in ScenarioArchetype):
        return make_archetype_schedule(
            ScenarioArchetype(scenario), total_duration_s=total_duration_s, seed=seed
        )
    raise ValueError(
        f"unknown scenario {scenario!r}; expected one of {sorted(SCENARIO_NAMES)}"
    )


@dataclass(frozen=True)
class ControllerSpec:
    """Declarative description of one device's adaptive controller.

    Storing the *specification* instead of a controller instance keeps
    profiles immutable and lets both the batched fleet engine and the
    sequential reference path build their own fresh, stateful controller
    from identical settings.
    """

    kind: str
    stability_threshold: int = 20
    confidence_threshold: float = 0.85
    static_config_name: str = HIGH_POWER_CONFIG.name
    intensity_thresholds: Optional[IntensityThresholds] = None
    #: Optional SPOT state table, as a tuple of paper-style config names
    #: (highest to lowest power).  ``None`` keeps the paper's default
    #: Pareto states.  Tables are interned by name, so every variant of
    #: a campaign grid that names the same table shares one tuple and
    #: banks together in the fleet engine.
    config_table: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in CONTROLLER_KINDS:
            raise ValueError(
                f"kind must be one of {CONTROLLER_KINDS}, got {self.kind!r}"
            )
        if self.kind == "intensity" and self.intensity_thresholds is None:
            raise ValueError(
                "intensity controllers need calibrated intensity_thresholds"
            )
        if self.config_table is not None:
            if self.kind not in ("spot", "spot_confidence"):
                raise ValueError(
                    "config_table only applies to SPOT controllers, "
                    f"got kind {self.kind!r}"
                )
            object.__setattr__(
                self,
                "config_table",
                tuple(str(name) for name in self.config_table),
            )
            # Validate the names eagerly (and warm the interned tuple).
            intern_config_table(self.config_table)

    @property
    def label(self) -> str:
        """Human-readable summary used by telemetry breakdowns."""
        table = (
            "" if self.config_table is None
            else f", table={'|'.join(self.config_table)}"
        )
        if self.kind == "spot":
            return f"spot(t={self.stability_threshold}{table})"
        if self.kind == "spot_confidence":
            return (
                f"spot_confidence(t={self.stability_threshold}, "
                f"c={self.confidence_threshold:g}{table})"
            )
        if self.kind == "static":
            return f"static({self.static_config_name})"
        return "intensity"

    def behavior_key(self) -> Tuple[object, ...]:
        """Hashable key over the fields this controller's behaviour reads.

        :meth:`build` ignores every field outside the returned key (a
        plain ``spot`` controller never looks at ``confidence_threshold``,
        a ``static`` one at neither threshold), so two specs with equal
        keys drive bit-identical simulations of the same device.  The
        campaign layer uses this to simulate one representative per
        behaviour class and reuse its trace for every duplicate variant.
        """
        if self.kind == "spot":
            return ("spot", self.stability_threshold, self.config_table)
        if self.kind == "spot_confidence":
            return (
                "spot_confidence",
                self.stability_threshold,
                self.confidence_threshold,
                self.config_table,
            )
        if self.kind == "static":
            return ("static", self.static_config_name)
        assert self.intensity_thresholds is not None
        return (
            "intensity",
            tuple(sorted(self.intensity_thresholds.thresholds.items())),
        )

    def build(self) -> AdaptiveController:
        """Instantiate a fresh controller from this specification."""
        if self.kind == "spot":
            if self.config_table is not None:
                return SpotController(
                    states=intern_config_table(self.config_table),
                    stability_threshold=self.stability_threshold,
                )
            return SpotController(stability_threshold=self.stability_threshold)
        if self.kind == "spot_confidence":
            if self.config_table is not None:
                return SpotWithConfidenceController(
                    states=intern_config_table(self.config_table),
                    stability_threshold=self.stability_threshold,
                    confidence_threshold=self.confidence_threshold,
                )
            return SpotWithConfidenceController(
                stability_threshold=self.stability_threshold,
                confidence_threshold=self.confidence_threshold,
            )
        if self.kind == "static":
            return StaticController(get_config(self.static_config_name))
        assert self.intensity_thresholds is not None
        return IntensityController(self.intensity_thresholds)


@dataclass(frozen=True)
class DeviceProfile:
    """Everything that defines one virtual device in a fleet.

    Attributes
    ----------
    device_id:
        Position of the device in its population.
    scenario:
        Name of the behaviour scenario the schedule was drawn from.
    schedule:
        The concrete activity schedule the device's user follows.
    controller:
        Specification of the device's adaptive controller.
    noise:
        The device's sensor noise model (per-device noise level).
    power_model:
        The device's accelerometer current model (per-device variation).
    battery:
        The battery the device runs from (used for lifetime telemetry).
    seed:
        Seed of the device's private random stream; signal realisation
        and sensor noise derive from it exactly as in
        :meth:`repro.sim.runtime.ClosedLoopSimulator.run`.
    """

    device_id: int
    scenario: str
    schedule: Tuple[Tuple[Activity, float], ...]
    controller: ControllerSpec
    noise: NoiseModel
    power_model: AccelerometerPowerModel
    battery: Battery
    seed: int

    @property
    def duration_s(self) -> float:
        """Total duration of the device's schedule in seconds."""
        return schedule_duration(self.schedule)

    def make_controller(self) -> AdaptiveController:
        """Build a fresh controller instance for one simulation run."""
        return self.controller.build()


@dataclass(frozen=True)
class PopulationSpec:
    """Distributional knobs for population generation.

    Parameters
    ----------
    scenario_weights:
        Relative prevalence of each scenario name; defaults to a uniform
        mix over all settings and archetypes.
    controller_weights:
        Relative prevalence of each controller kind.
    stability_choices:
        SPOT stability thresholds sampled uniformly per SPOT device.
    confidence_choices:
        Confidence gates sampled uniformly per SPOT-with-confidence
        device.
    noise_scale_range:
        Uniform range multiplying the default per-sub-sample noise
        standard deviation (device-to-device sensor quality spread).
    power_scale_range:
        Uniform range multiplying the default active/suspend currents
        (part-to-part manufacturing variation).
    battery_mah_range:
        Uniform range the per-device battery capacity is drawn from.
    calibration_windows_per_activity:
        Windows per activity used to calibrate intensity thresholds when
        the population contains intensity-switching devices.
    """

    scenario_weights: Mapping[str, float] = field(
        default_factory=lambda: {name: 1.0 for name in SCENARIO_NAMES}
    )
    controller_weights: Mapping[str, float] = field(
        default_factory=lambda: {
            "spot_confidence": 0.4,
            "spot": 0.3,
            "static": 0.15,
            "intensity": 0.15,
        }
    )
    stability_choices: Tuple[int, ...] = (10, 20, 30)
    confidence_choices: Tuple[float, ...] = (0.75, 0.85, 0.9)
    noise_scale_range: Tuple[float, float] = (0.7, 1.4)
    power_scale_range: Tuple[float, float] = (0.9, 1.1)
    battery_mah_range: Tuple[float, float] = (40.0, 250.0)
    calibration_windows_per_activity: int = 8

    def __post_init__(self) -> None:
        for name, weights in (
            ("scenario_weights", self.scenario_weights),
            ("controller_weights", self.controller_weights),
        ):
            if not weights:
                raise ValueError(f"{name} must not be empty")
            if any(weight < 0 for weight in weights.values()):
                raise ValueError(f"{name} must be non-negative")
            if sum(weights.values()) <= 0:
                raise ValueError(f"{name} must contain a positive weight")
        unknown = set(self.scenario_weights) - set(SCENARIO_NAMES)
        if unknown:
            raise ValueError(f"unknown scenarios in scenario_weights: {sorted(unknown)}")
        unknown = set(self.controller_weights) - set(CONTROLLER_KINDS)
        if unknown:
            raise ValueError(
                f"unknown controllers in controller_weights: {sorted(unknown)}"
            )
        check_positive_int(
            self.calibration_windows_per_activity, "calibration_windows_per_activity"
        )


def _weighted_choice(rng, weights: Mapping[str, float]) -> str:
    """Draw one key with probability proportional to its weight.

    Keys are sorted so the draw depends only on the mapping's contents,
    not its insertion order.
    """
    names = sorted(weights)
    total = float(sum(weights[name] for name in names))
    pick = rng.uniform(0.0, total)
    accumulated = 0.0
    for name in names:
        accumulated += float(weights[name])
        if pick <= accumulated:
            return name
    return names[-1]


class DevicePopulation:
    """An immutable, deterministic collection of device profiles.

    Build one with :meth:`generate` (the usual path) or directly from a
    sequence of hand-crafted profiles (useful in tests).
    """

    def __init__(self, profiles: Sequence[DeviceProfile]) -> None:
        self._profiles: Tuple[DeviceProfile, ...] = tuple(profiles)

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        num_devices: int,
        duration_s: float,
        master_seed: int = 0,
        spec: Optional[PopulationSpec] = None,
    ) -> "DevicePopulation":
        """Generate ``num_devices`` heterogeneous devices deterministically.

        Every per-device draw happens on a private stream derived from
        ``(master_seed, device index, purpose)`` via
        :func:`repro.utils.rng.stable_seed_from`, so adding devices to a
        population or reordering the generation loop never perturbs the
        devices that already existed — and the same arguments always
        reproduce the exact same fleet.

        Parameters
        ----------
        num_devices:
            Number of devices to generate.
        duration_s:
            Duration of every device's activity schedule in seconds.
        master_seed:
            Master seed the whole population derives from.
        spec:
            Distributional knobs; defaults to :class:`PopulationSpec`.
        """
        check_positive_int(num_devices, "num_devices")
        check_positive(duration_s, "duration_s")
        spec = spec if spec is not None else PopulationSpec()

        intensity_thresholds: Optional[IntensityThresholds] = None
        if spec.controller_weights.get("intensity", 0.0) > 0.0:
            intensity_thresholds = calibrate_intensity_thresholds(
                (HIGH_POWER_CONFIG, DEFAULT_LOW_INTENSITY_CONFIG),
                windows_per_activity=spec.calibration_windows_per_activity,
                seed=stable_seed_from(master_seed, "intensity-calibration"),
            )

        default_noise = NoiseModel()
        default_power = AccelerometerPowerModel.bmi160()
        profiles: List[DeviceProfile] = []
        for device_id in range(num_devices):
            draw = as_rng(stable_seed_from(master_seed, device_id, "profile"))

            scenario = _weighted_choice(draw, spec.scenario_weights)
            schedule = make_scenario_schedule(
                scenario,
                total_duration_s=duration_s,
                seed=stable_seed_from(master_seed, device_id, "schedule"),
            )

            kind = _weighted_choice(draw, spec.controller_weights)
            controller = ControllerSpec(
                kind=kind,
                stability_threshold=int(
                    spec.stability_choices[
                        int(draw.integers(len(spec.stability_choices)))
                    ]
                ),
                confidence_threshold=float(
                    spec.confidence_choices[
                        int(draw.integers(len(spec.confidence_choices)))
                    ]
                ),
                intensity_thresholds=(
                    intensity_thresholds if kind == "intensity" else None
                ),
            )

            noise_scale = float(draw.uniform(*spec.noise_scale_range))
            noise = replace(
                default_noise,
                base_noise_std_ms2=default_noise.base_noise_std_ms2 * noise_scale,
            )
            power_scale = float(draw.uniform(*spec.power_scale_range))
            power_model = replace(
                default_power,
                active_current_ua=default_power.active_current_ua * power_scale,
                suspend_current_ua=default_power.suspend_current_ua * power_scale,
            )
            battery = Battery(
                capacity_mah=float(draw.uniform(*spec.battery_mah_range))
            )

            profiles.append(
                DeviceProfile(
                    device_id=device_id,
                    scenario=scenario,
                    schedule=tuple(
                        (activity, float(duration)) for activity, duration in schedule
                    ),
                    controller=controller,
                    noise=noise,
                    power_model=power_model,
                    battery=battery,
                    seed=stable_seed_from(master_seed, device_id, "simulation"),
                )
            )
        return cls(profiles)

    # ------------------------------------------------------------------
    # Collection behaviour
    # ------------------------------------------------------------------
    @property
    def profiles(self) -> Tuple[DeviceProfile, ...]:
        """The device profiles, in device-id order."""
        return self._profiles

    def __len__(self) -> int:
        return len(self._profiles)

    def __iter__(self) -> Iterator[DeviceProfile]:
        return iter(self._profiles)

    def __getitem__(self, index: int) -> DeviceProfile:
        return self._profiles[index]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def scenario_counts(self) -> Dict[str, int]:
        """Number of devices per scenario name."""
        counts: Dict[str, int] = {}
        for profile in self._profiles:
            counts[profile.scenario] = counts.get(profile.scenario, 0) + 1
        return counts

    def controller_counts(self) -> Dict[str, int]:
        """Number of devices per controller kind."""
        counts: Dict[str, int] = {}
        for profile in self._profiles:
            kind = profile.controller.kind
            counts[kind] = counts.get(kind, 0) + 1
        return counts

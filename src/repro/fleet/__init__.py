"""Fleet simulation: vectorized multi-device AdaSense.

The single-device :class:`repro.sim.runtime.ClosedLoopSimulator` steps
one virtual wearable at a time.  This subsystem scales that loop to
*populations*: :mod:`repro.fleet.population` generates N heterogeneous
devices deterministically from a master seed,
:mod:`repro.fleet.engine` advances all of them in lock step on the
shared execution core (:mod:`repro.exec`) — stacked sensing,
incremental feature extraction and one batched classifier call per
simulated second — :class:`repro.exec.sharding.ShardedFleetSimulator`
splits a population across worker processes, and
:mod:`repro.fleet.telemetry` aggregates (and merges) the resulting
traces into fleet-level distributions with JSON export.

>>> from repro import AdaSense
>>> from repro.fleet import DevicePopulation, FleetSimulator, FleetTelemetry
>>> system = AdaSense.train(windows_per_activity_per_config=16, seed=0)
>>> population = DevicePopulation.generate(8, duration_s=60.0, master_seed=1)
>>> result = FleetSimulator(system.pipeline).run(population)
>>> telemetry = FleetTelemetry.from_result(result)
>>> telemetry.num_devices
8
"""

from repro.fleet.engine import (
    FleetResult,
    FleetRuntime,
    FleetSimulator,
    resolve_fleet_duration,
    traces_equal,
)
from repro.fleet.population import (
    CONTROLLER_KINDS,
    SCENARIO_NAMES,
    ControllerSpec,
    DevicePopulation,
    DeviceProfile,
    PopulationSpec,
    make_scenario_schedule,
)
from repro.fleet.telemetry import (
    DeviceReport,
    FleetTelemetry,
    distribution_stats,
)
from repro.exec.sharding import ShardedFleetRun, ShardedFleetSimulator

__all__ = [
    "CONTROLLER_KINDS",
    "SCENARIO_NAMES",
    "ControllerSpec",
    "DevicePopulation",
    "DeviceProfile",
    "DeviceReport",
    "FleetResult",
    "FleetRuntime",
    "FleetSimulator",
    "FleetTelemetry",
    "PopulationSpec",
    "ShardedFleetRun",
    "ShardedFleetSimulator",
    "distribution_stats",
    "make_scenario_schedule",
    "resolve_fleet_duration",
    "traces_equal",
]

"""Fleet-level telemetry: aggregating device traces into distributions.

A single simulated device yields a :class:`repro.sim.trace.SimulationTrace`;
a fleet yields hundreds of them.  What a product team asks of a fleet is
distributional: *what does power draw look like across the population?
which percentile of users falls below a day of battery life?  how do the
SPOT devices compare with the static ones?  how long do devices dwell in
each sensor configuration?*  :class:`FleetTelemetry` answers those
questions from a :class:`repro.fleet.engine.FleetResult` and exports the
whole report as JSON for dashboards and downstream tooling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.fleet.engine import FleetResult
from repro.fleet.population import DeviceProfile
from repro.sim.trace import SimulationTrace, TraceSummary

#: Percentiles reported for every fleet-level distribution.
DISTRIBUTION_PERCENTILES: Tuple[int, ...] = (5, 25, 50, 75, 95)


def distribution_stats(values: Sequence[float]) -> Dict[str, float]:
    """Summary statistics (mean, spread, percentiles) of a sample.

    All percentiles are computed with a single :func:`np.percentile`
    call.  An empty sample yields a well-defined all-zero summary
    (``count`` 0.0) instead of an error, so group-wise aggregations may
    encounter empty partitions without special-casing.

    Parameters
    ----------
    values:
        Sequence of per-device measurements.
    """
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        stats = dict.fromkeys(("count", "mean", "std", "min", "max"), 0.0)
        stats.update((f"p{percentile}", 0.0) for percentile in DISTRIBUTION_PERCENTILES)
        return stats
    stats = {
        "count": float(array.size),
        "mean": float(array.mean()),
        "std": float(array.std()),
        "min": float(array.min()),
        "max": float(array.max()),
    }
    percentiles = np.percentile(array, DISTRIBUTION_PERCENTILES)
    stats.update(
        (f"p{percentile}", float(value))
        for percentile, value in zip(DISTRIBUTION_PERCENTILES, percentiles)
    )
    return stats


@dataclass(frozen=True)
class DeviceReport:
    """Per-device summary derived from one trace.

    Attributes
    ----------
    device_id, scenario, controller, seed:
        Identity of the device (``controller`` is the spec's descriptive
        label, ``controller_kind`` the coarse kind used for grouping).
    steps, duration_s:
        Size of the simulated trace.
    accuracy:
        Fraction of steps classified correctly.
    average_current_ua:
        Time-weighted average sensor current.
    energy_uc:
        Total sensor charge drawn, in microcoulombs.
    battery_capacity_mah:
        Capacity of the device's battery.
    battery_life_days:
        Estimated days the device's battery sustains its average current.
    state_residency:
        Fraction of time spent in each sensor configuration.
    config_switches:
        Number of steps whose active configuration differed from the
        previous step's — the controller's switching activity.
    """

    device_id: int
    scenario: str
    controller: str
    controller_kind: str
    seed: int
    steps: int
    duration_s: float
    accuracy: float
    average_current_ua: float
    energy_uc: float
    battery_capacity_mah: float
    battery_life_days: float
    state_residency: Mapping[str, float]
    config_switches: int

    @classmethod
    def from_trace(
        cls, profile: DeviceProfile, trace: SimulationTrace
    ) -> "DeviceReport":
        """Summarise one device's trace.

        The trace is replayed through the
        :class:`repro.sim.trace.TraceSummary` fold — the same
        accumulation a ``trace="summary"`` run performs on the fly —
        so full-trace and streaming runs produce bit-identical reports.
        """
        return cls.from_summary(profile, TraceSummary.from_trace(trace))

    @classmethod
    def from_summary(
        cls, profile: DeviceProfile, summary: TraceSummary
    ) -> "DeviceReport":
        """Build the report straight from streaming accumulators."""
        average_current = summary.average_current_ua
        return cls(
            device_id=profile.device_id,
            scenario=profile.scenario,
            controller=profile.controller.label,
            controller_kind=profile.controller.kind,
            seed=profile.seed,
            steps=summary.steps,
            duration_s=summary.duration_s,
            accuracy=summary.accuracy,
            average_current_ua=average_current,
            energy_uc=summary.energy_uc,
            battery_capacity_mah=profile.battery.capacity_mah,
            battery_life_days=profile.battery.lifetime_days(average_current),
            state_residency=summary.state_residency(),
            config_switches=summary.config_switches,
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable view of the report."""
        return {
            "device_id": self.device_id,
            "scenario": self.scenario,
            "controller": self.controller,
            "controller_kind": self.controller_kind,
            "seed": self.seed,
            "steps": self.steps,
            "duration_s": self.duration_s,
            "accuracy": self.accuracy,
            "average_current_ua": self.average_current_ua,
            "energy_uc": self.energy_uc,
            "battery_capacity_mah": self.battery_capacity_mah,
            "battery_life_days": self.battery_life_days,
            "state_residency": dict(self.state_residency),
            "config_switches": self.config_switches,
        }


class FleetTelemetry:
    """Aggregates per-device reports into fleet-level distributions."""

    def __init__(self, reports: Sequence[DeviceReport]) -> None:
        if not reports:
            raise ValueError("telemetry needs at least one device report")
        self._reports: Tuple[DeviceReport, ...] = tuple(reports)

    @classmethod
    def from_result(cls, result: FleetResult) -> "FleetTelemetry":
        """Build telemetry from a :class:`FleetResult`.

        Accepts both full-trace results and streaming
        (``trace_mode="summary"``) results, whose per-device
        :class:`TraceSummary` aggregates feed the reports directly.
        """
        return cls(
            [
                DeviceReport.from_summary(profile, trace)
                if isinstance(trace, TraceSummary)
                else DeviceReport.from_trace(profile, trace)
                for profile, trace in zip(result.profiles, result.traces)
            ]
        )

    @classmethod
    def merge(cls, parts: Sequence["FleetTelemetry"]) -> "FleetTelemetry":
        """Merge telemetry from several shards into one fleet report.

        Device reports are re-sorted by device id, so the merged report
        is independent of how the fleet was sharded — a 1-, 2- or
        4-shard run of the same population yields an identical report.
        """
        if not parts:
            raise ValueError("merge needs at least one telemetry part")
        reports = [report for part in parts for report in part.reports]
        reports.sort(key=lambda report: report.device_id)
        return cls(reports)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def reports(self) -> Tuple[DeviceReport, ...]:
        """The per-device reports, in device-id order."""
        return self._reports

    @property
    def num_devices(self) -> int:
        """Number of devices covered by this telemetry."""
        return len(self._reports)

    @property
    def device_seconds(self) -> float:
        """Total simulated device-time, in seconds."""
        return float(sum(report.duration_s for report in self._reports))

    # ------------------------------------------------------------------
    # Fleet-level aggregation
    # ------------------------------------------------------------------
    def fleet_summary(self) -> Dict[str, object]:
        """Headline distributions over the whole fleet."""
        return {
            "num_devices": self.num_devices,
            "device_seconds": self.device_seconds,
            "accuracy": distribution_stats(
                [report.accuracy for report in self._reports]
            ),
            "average_current_ua": distribution_stats(
                [report.average_current_ua for report in self._reports]
            ),
            "battery_life_days": distribution_stats(
                [report.battery_life_days for report in self._reports]
            ),
            "config_dwell": self.config_dwell(),
        }

    def config_dwell(self) -> Dict[str, float]:
        """Fleet-wide fraction of device-time spent in each configuration.

        Each device's residency is weighted by its simulated duration, so
        the values sum to one over the whole fleet.
        """
        dwell: Dict[str, float] = {}
        total_time = self.device_seconds
        for report in self._reports:
            for config_name, share in report.state_residency.items():
                dwell[config_name] = (
                    dwell.get(config_name, 0.0)
                    + share * report.duration_s / total_time
                )
        return dict(sorted(dwell.items()))

    def by_scenario(self) -> Dict[str, Dict[str, object]]:
        """Aggregate metrics per behaviour scenario."""
        return self._grouped(lambda report: report.scenario)

    def by_controller(self) -> Dict[str, Dict[str, object]]:
        """Aggregate metrics per controller kind."""
        return self._grouped(lambda report: report.controller_kind)

    def _grouped(self, key) -> Dict[str, Dict[str, object]]:
        groups: Dict[str, List[DeviceReport]] = {}
        for report in self._reports:
            groups.setdefault(key(report), []).append(report)
        aggregated: Dict[str, Dict[str, object]] = {}
        for name in sorted(groups):
            members = groups[name]
            aggregated[name] = {
                "num_devices": len(members),
                "mean_accuracy": float(
                    np.mean([member.accuracy for member in members])
                ),
                "mean_current_ua": float(
                    np.mean([member.average_current_ua for member in members])
                ),
                "mean_battery_life_days": float(
                    np.mean([member.battery_life_days for member in members])
                ),
            }
        return aggregated

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The full telemetry report as one JSON-serialisable mapping."""
        return {
            "fleet": self.fleet_summary(),
            "by_scenario": self.by_scenario(),
            "by_controller": self.by_controller(),
            "devices": [report.to_dict() for report in self._reports],
        }

    def to_json(self, path: Optional[str] = None, indent: int = 2) -> str:
        """Serialise the report to JSON, optionally writing it to ``path``."""
        text = json.dumps(self.to_dict(), indent=indent, sort_keys=True)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
        return text

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def format_table(self) -> str:
        """Human-readable fleet report for the CLI."""
        summary = self.fleet_summary()
        accuracy = summary["accuracy"]
        current = summary["average_current_ua"]
        battery = summary["battery_life_days"]
        lines = [
            f"devices            : {self.num_devices}",
            f"device-time        : {self.device_seconds:.0f} s",
            (
                "accuracy           : "
                f"mean {accuracy['mean']:.3f}  "
                f"p5 {accuracy['p5']:.3f}  p50 {accuracy['p50']:.3f}  "
                f"p95 {accuracy['p95']:.3f}"
            ),
            (
                "current (uA)       : "
                f"mean {current['mean']:.1f}  "
                f"p5 {current['p5']:.1f}  p50 {current['p50']:.1f}  "
                f"p95 {current['p95']:.1f}"
            ),
            (
                "battery life (days): "
                f"mean {battery['mean']:.1f}  "
                f"p5 {battery['p5']:.1f}  p50 {battery['p50']:.1f}  "
                f"p95 {battery['p95']:.1f}"
            ),
            "config dwell       :",
        ]
        for config_name, share in self.config_dwell().items():
            lines.append(f"  {config_name:>12}: {100.0 * share:5.1f} %")
        lines.append("by controller      :")
        for kind, stats in self.by_controller().items():
            lines.append(
                f"  {kind:>15}: {stats['num_devices']:>4} devices  "
                f"acc {stats['mean_accuracy']:.3f}  "
                f"{stats['mean_current_ua']:7.1f} uA  "
                f"{stats['mean_battery_life_days']:6.1f} days"
            )
        lines.append("by scenario        :")
        for scenario, stats in self.by_scenario().items():
            lines.append(
                f"  {scenario:>15}: {stats['num_devices']:>4} devices  "
                f"acc {stats['mean_accuracy']:.3f}  "
                f"{stats['mean_current_ua']:7.1f} uA  "
                f"{stats['mean_battery_life_days']:6.1f} days"
            )
        return "\n".join(lines)

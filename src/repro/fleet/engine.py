"""Vectorized lock-step simulation of a whole fleet of devices.

:class:`FleetSimulator` advances every device in a population through
the sense → classify → adapt loop *together*, one simulated second at a
time.  Sensing and control stay per-device (each device owns its signal,
noise stream, buffer and controller state), but the expensive middle of
the loop is batched: every tick the freshly buffered windows of all N
devices are feature-extracted as stacked matrices (one per sensor
configuration in use) and classified with a **single**
:meth:`repro.core.pipeline.HarPipeline.classify_batch` call, instead of
N independent pipeline invocations.

Because the batched classifier path is bit-for-bit invariant to batch
size (see :meth:`HarPipeline.classify_batch`) and each device's random
draws replicate :meth:`repro.sim.runtime.ClosedLoopSimulator.run`
draw-for-draw, a fleet simulation produces *exactly* the traces the
sequential per-device loop would — :meth:`FleetSimulator.run_sequential`
is that reference path, used by the equivalence tests and the
throughput benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.features import WINDOW_DURATION_S
from repro.core.pipeline import HarPipeline
from repro.datasets.synthetic import ScheduledSignal
from repro.fleet.population import DeviceProfile, DevicePopulation
from repro.sensors.buffer import SampleBuffer
from repro.sensors.imu import DEFAULT_INTERNAL_RATE_HZ, SimulatedAccelerometer
from repro.sim.runtime import ClosedLoopSimulator
from repro.sim.trace import SimulationTrace, StepRecord
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class FleetResult:
    """Outcome of one fleet simulation.

    Attributes
    ----------
    profiles:
        The simulated device profiles, in device-id order.
    traces:
        One :class:`SimulationTrace` per device, parallel to
        ``profiles``.
    elapsed_s:
        Wall-clock time the simulation took.
    mode:
        ``"batched"`` or ``"sequential"``.
    """

    profiles: Tuple[DeviceProfile, ...]
    traces: Tuple[SimulationTrace, ...]
    elapsed_s: float
    mode: str

    def __post_init__(self) -> None:
        if len(self.profiles) != len(self.traces):
            raise ValueError(
                f"profiles and traces must be parallel, got "
                f"{len(self.profiles)} profiles and {len(self.traces)} traces"
            )

    @property
    def num_devices(self) -> int:
        """Number of simulated devices."""
        return len(self.profiles)

    @property
    def device_seconds(self) -> float:
        """Total simulated device-time across the fleet, in seconds."""
        return float(sum(trace.duration_s for trace in self.traces))

    @property
    def throughput_device_seconds_per_s(self) -> float:
        """Simulated device-seconds per wall-clock second."""
        if self.elapsed_s <= 0.0:
            return float("inf")
        return self.device_seconds / self.elapsed_s


class _DeviceState:
    """Mutable per-device simulation state inside the lock-step loop.

    Construction replicates the exact random-draw order of
    :meth:`ClosedLoopSimulator.run`: one stream per device seeds first
    the signal realisation, then the sensor bias, then every per-step
    noise draw.
    """

    __slots__ = (
        "profile",
        "rng",
        "signal",
        "sensor",
        "buffer",
        "controller",
        "observe",
        "trace",
        "active_config",
    )

    def __init__(
        self,
        profile: DeviceProfile,
        internal_rate_hz: float,
        window_duration_s: float,
    ) -> None:
        self.profile = profile
        self.rng = as_rng(profile.seed)
        self.signal = ScheduledSignal(list(profile.schedule), seed=self.rng)
        self.sensor = SimulatedAccelerometer(
            signal=self.signal,
            noise=profile.noise,
            internal_rate_hz=internal_rate_hz,
            seed=self.rng,
        )
        self.buffer = SampleBuffer(window_duration_s=window_duration_s)
        self.controller = profile.make_controller()
        self.controller.reset()
        self.observe: Optional[Callable] = getattr(
            self.controller, "observe_window", None
        )
        self.trace = SimulationTrace()
        self.active_config = None


class FleetSimulator:
    """Lock-step, batched simulation of a device population.

    Parameters
    ----------
    pipeline:
        The trained HAR pipeline shared by the whole fleet (the paper's
        shared-classifier property is what makes one batched inference
        call per tick possible).
    internal_rate_hz:
        Internal conversion rate of every simulated accelerometer.
    step_s:
        Classification period (one second in the paper).
    window_duration_s:
        Length of the classification buffer (two seconds in the paper).
    """

    def __init__(
        self,
        pipeline: HarPipeline,
        internal_rate_hz: float = DEFAULT_INTERNAL_RATE_HZ,
        step_s: float = 1.0,
        window_duration_s: float = WINDOW_DURATION_S,
    ) -> None:
        check_positive(step_s, "step_s")
        check_positive(window_duration_s, "window_duration_s")
        if window_duration_s < step_s:
            raise ValueError(
                "window_duration_s must be at least step_s, got "
                f"{window_duration_s} < {step_s}"
            )
        self._pipeline = pipeline
        self._internal_rate_hz = float(internal_rate_hz)
        self._step_s = float(step_s)
        self._window_duration_s = float(window_duration_s)

    @property
    def pipeline(self) -> HarPipeline:
        """The shared HAR pipeline."""
        return self._pipeline

    # ------------------------------------------------------------------
    # Batched simulation
    # ------------------------------------------------------------------
    def run(
        self,
        population: "DevicePopulation | Sequence[DeviceProfile]",
        duration_s: Optional[float] = None,
    ) -> FleetResult:
        """Simulate every device in lock step with batched classification.

        Parameters
        ----------
        population:
            The devices to simulate.
        duration_s:
            Simulated seconds per device; defaults to the shortest
            schedule in the population so every device has signal for
            the whole run.

        Returns
        -------
        FleetResult
            Per-device traces bit-identical to
            :meth:`run_sequential` for the same population.
        """
        profiles = tuple(population)
        if not profiles:
            raise ValueError("population must contain at least one device")
        duration = self._resolve_duration(profiles, duration_s)

        start = time.perf_counter()
        states = [
            _DeviceState(profile, self._internal_rate_hz, self._window_duration_s)
            for profile in profiles
        ]
        num_steps = int(round(duration / self._step_s))
        for step_index in range(1, num_steps + 1):
            step_end = step_index * self._step_s

            # Phase 1 (per device): acquire this second of samples under
            # the controller's active configuration and refresh buffers.
            windows = []
            for state in states:
                state.active_config = state.controller.current_config
                acquisition = state.sensor.read_window(
                    end_time_s=step_end,
                    duration_s=self._step_s,
                    config=state.active_config,
                    rng=state.rng,
                )
                state.buffer.push(acquisition)
                if state.observe is not None:
                    state.observe(acquisition)
                windows.append(state.buffer.window())

            # Phase 2 (fleet-wide): one stacked feature extraction per
            # configuration group and a single batched classifier call.
            results = self._pipeline.classify_windows(windows)

            # Phase 3 (per device): advance controllers and record.
            for state, result in zip(states, results):
                state.controller.update(result.activity, result.confidence)
                true_activity = state.signal.activity_at(
                    step_end - 0.5 * self._step_s
                )
                state.trace.append(
                    StepRecord(
                        time_s=step_end,
                        true_activity=true_activity,
                        predicted_activity=result.activity,
                        confidence=result.confidence,
                        config_name=state.active_config.name,
                        current_ua=state.profile.power_model.current_ua(
                            state.active_config
                        ),
                        duration_s=self._step_s,
                    )
                )
        elapsed = time.perf_counter() - start
        return FleetResult(
            profiles=profiles,
            traces=tuple(state.trace for state in states),
            elapsed_s=elapsed,
            mode="batched",
        )

    # ------------------------------------------------------------------
    # Sequential reference path
    # ------------------------------------------------------------------
    def run_sequential(
        self,
        population: "DevicePopulation | Sequence[DeviceProfile]",
        duration_s: Optional[float] = None,
    ) -> FleetResult:
        """Simulate each device independently with the single-device loop.

        This is the O(N × per-device-Python-loop) reference the batched
        engine is validated against and benchmarked over.  Devices whose
        schedules are longer than ``duration_s`` are truncated so both
        paths simulate the same number of steps.
        """
        profiles = tuple(population)
        if not profiles:
            raise ValueError("population must contain at least one device")
        duration = self._resolve_duration(profiles, duration_s)
        num_steps = int(round(duration / self._step_s))

        start = time.perf_counter()
        traces: List[SimulationTrace] = []
        for profile in profiles:
            simulator = ClosedLoopSimulator(
                pipeline=self._pipeline,
                controller=profile.make_controller(),
                power_model=profile.power_model,
                noise=profile.noise,
                internal_rate_hz=self._internal_rate_hz,
                step_s=self._step_s,
                window_duration_s=self._window_duration_s,
            )
            trace = simulator.run(list(profile.schedule), seed=profile.seed)
            trace.records = trace.records[:num_steps]
            traces.append(trace)
        elapsed = time.perf_counter() - start
        return FleetResult(
            profiles=profiles,
            traces=tuple(traces),
            elapsed_s=elapsed,
            mode="sequential",
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve_duration(
        self, profiles: Sequence[DeviceProfile], duration_s: Optional[float]
    ) -> float:
        shortest = min(profile.duration_s for profile in profiles)
        if duration_s is None:
            return shortest
        check_positive(duration_s, "duration_s")
        if duration_s - shortest > 1e-9:
            raise ValueError(
                f"duration_s={duration_s} exceeds the shortest device schedule "
                f"({shortest} s); regenerate the population with a longer duration"
            )
        return float(duration_s)


def traces_equal(left: SimulationTrace, right: SimulationTrace) -> bool:
    """Whether two traces are bit-for-bit identical, record by record."""
    if len(left) != len(right):
        return False
    for a, b in zip(left.records, right.records):
        if (
            a.time_s != b.time_s
            or a.true_activity != b.true_activity
            or a.predicted_activity != b.predicted_activity
            or a.confidence != b.confidence
            or a.config_name != b.config_name
            or a.current_ua != b.current_ua
            or a.duration_s != b.duration_s
        ):
            return False
    return True

"""Vectorized lock-step simulation of a whole fleet of devices.

:class:`FleetSimulator` advances every device in a population through
the sense → classify → adapt loop *together*, one simulated second at a
time, by handing the whole population to the shared execution core
(:class:`repro.exec.engine.StepEngine`) — the same engine the
single-device :class:`repro.sim.runtime.ClosedLoopSimulator` drives, so
the two loops cannot drift apart.  Per tick the engine batches the
expensive middle of the loop: devices sharing a sensor configuration
are *sensed* with one stacked acquisition pass, their features are
extracted incrementally from cached per-second partials (or exactly,
with ``features="exact"``), and the entire fleet is classified with a
**single** :meth:`repro.core.pipeline.HarPipeline.classify_batch` call.

Because the batched classifier path is bit-for-bit invariant to batch
size, the stacked sensing path preserves each device's private noise
stream, and the incremental/exact feature decision depends only on
per-device state, a fleet simulation produces *exactly* the traces the
sequential per-device loop would — :meth:`FleetSimulator.run_sequential`
is that reference path, used by the equivalence tests, the sharding
tests and the throughput benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.features import WINDOW_DURATION_S
from repro.core.pipeline import HarPipeline
from repro.exec.engine import DeviceRuntime, EngineState, StepEngine
from repro.fleet.population import DeviceProfile, DevicePopulation
from repro.sensors.imu import DEFAULT_INTERNAL_RATE_HZ
from repro.sim.runtime import ClosedLoopSimulator
from repro.sim.trace import SimulationTrace, TraceSummary
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class FleetResult:
    """Outcome of one fleet simulation.

    Attributes
    ----------
    profiles:
        The simulated device profiles, in device-id order.
    traces:
        One :class:`SimulationTrace` (``trace_mode="full"``) or
        :class:`repro.sim.trace.TraceSummary` (``trace_mode="summary"``)
        per device, parallel to ``profiles``.
    elapsed_s:
        Wall-clock time the simulation took.
    mode:
        ``"batched"``, ``"sequential"`` or ``"sharded"``.
    trace_mode:
        ``"full"`` when per-step traces were materialised,
        ``"summary"`` when only O(1)-memory running aggregates were
        kept per device.
    """

    profiles: Tuple[DeviceProfile, ...]
    traces: "Tuple[SimulationTrace | TraceSummary, ...]"
    elapsed_s: float
    mode: str
    trace_mode: str = "full"

    def __post_init__(self) -> None:
        if len(self.profiles) != len(self.traces):
            raise ValueError(
                f"profiles and traces must be parallel, got "
                f"{len(self.profiles)} profiles and {len(self.traces)} traces"
            )

    @property
    def num_devices(self) -> int:
        """Number of simulated devices."""
        return len(self.profiles)

    @property
    def device_seconds(self) -> float:
        """Total simulated device-time across the fleet, in seconds."""
        return float(sum(trace.duration_s for trace in self.traces))

    @property
    def throughput_device_seconds_per_s(self) -> float:
        """Simulated device-seconds per wall-clock second."""
        if self.elapsed_s <= 0.0:
            return float("inf")
        return self.device_seconds / self.elapsed_s


def resolve_fleet_duration(
    profiles: Sequence[DeviceProfile], duration_s: Optional[float]
) -> float:
    """Validate a requested fleet duration against the device schedules.

    Defaults to the shortest schedule in the population so every device
    has signal for the whole run; an explicit duration must not exceed
    that.
    """
    shortest = min(profile.duration_s for profile in profiles)
    if duration_s is None:
        return shortest
    check_positive(duration_s, "duration_s")
    if duration_s - shortest > 1e-9:
        raise ValueError(
            f"duration_s={duration_s} exceeds the shortest device schedule "
            f"({shortest} s); regenerate the population with a longer duration"
        )
    return float(duration_s)


class FleetRuntime:
    """Reusable execution state for repeated runs over one population.

    Built once by :meth:`FleetSimulator.build_runtime` and passed to
    :meth:`FleetSimulator.run` any number of times: the per-device
    runtimes (signal realisations, sensors, generators), the engine's
    :class:`repro.exec.engine.EngineState` (controller bank, ring
    storage, noise pools, warm signal-table cache) and the cached
    spectral plans all survive across runs, so a repeated same-geometry
    run skips every construction cost and rebuilds nothing.

    :meth:`reset` rewinds all mutable state — generator positions,
    controllers, buffers, traces, feature partials — to the
    just-constructed snapshot, so every run over the runtime is
    bit-identical to a fresh simulator run in the same mode.
    """

    def __init__(self, engine: StepEngine, profiles: Tuple[DeviceProfile, ...]) -> None:
        if not profiles:
            raise ValueError("population must contain at least one device")
        self.engine = engine
        self.profiles = profiles
        self.runtimes: List[DeviceRuntime] = engine.runtimes_from_profiles(
            profiles
        )
        # Generator positions are captured after construction (signal
        # realisation and sensor-bias draws already consumed), so a
        # restore replays exactly the per-run draw sequence.  Spawned
        # seed-sequence children are NOT part of this state — the noise
        # bank keeps its own (see NoiseBank.reset).
        self._rng_states = [
            runtime.rng.bit_generator.state for runtime in self.runtimes
        ]
        self.state: EngineState = engine.make_state(self.runtimes)
        self._dirty = False

    @property
    def num_devices(self) -> int:
        """Number of devices in the reusable fleet."""
        return len(self.profiles)

    def reset(self) -> None:
        """Rewind every runtime to its just-constructed snapshot."""
        for runtime, rng_state in zip(self.runtimes, self._rng_states):
            runtime.rng.bit_generator.state = rng_state
            runtime.controller.reset()
            runtime.buffer.clear()
            runtime.trace = SimulationTrace()
            runtime.active_config = None
            runtime.partials.clear()
            runtime.chunks_in_config = 0
            runtime.previous_config = None
        self.state.reset()
        self._dirty = False

    def begin_run(self) -> None:
        """Reset if a previous run used this runtime, then mark it used."""
        if self._dirty:
            self.reset()
        self._dirty = True


class FleetSimulator:
    """Lock-step, batched simulation of a device population.

    Parameters
    ----------
    pipeline:
        The trained HAR pipeline shared by the whole fleet (the paper's
        shared-classifier property is what makes one batched inference
        call per tick possible).
    internal_rate_hz:
        Internal conversion rate of every simulated accelerometer.
    step_s:
        Classification period (one second in the paper).
    window_duration_s:
        Length of the classification buffer (two seconds in the paper).
    features:
        Feature mode of the execution core — ``"incremental"``
        (default) or ``"exact"``; see
        :class:`repro.exec.engine.StepEngine`.
    sensing:
        Acquisition mode — ``"stacked"`` (default, vectorised across
        devices sharing a configuration) or ``"per_device"``.
    controllers:
        Controller-advance mode — ``"bank"`` (default, one vectorized
        array-of-states pass per tick) or ``"per_object"``; see
        :class:`repro.exec.engine.StepEngine`.
    noise:
        Acquisition-layer mode — ``"per_device"`` (default, bit-exact
        v1.3.0 reference) or ``"batched"`` (pooled counter-based noise
        streams, ring sample storage and cached signal tables); see
        :class:`repro.exec.engine.StepEngine`.
    dtype:
        Compute-lane precision — ``"float64"`` (default, bit-exact with
        every prior release) or ``"float32"`` (single-precision signal
        synthesis, acquisition and feature extraction; features are
        converted to float64 only at the classifier boundary); see
        :class:`repro.exec.engine.StepEngine`.
    metrics:
        Optional :class:`repro.obs.metrics.MetricsRegistry` the engine
        records runtime telemetry into (phase spans, counters, cohort
        histograms); ``None`` (default) runs unmetered at zero
        overhead.  Recording is observation only — traces stay
        bit-identical either way.
    """

    def __init__(
        self,
        pipeline: HarPipeline,
        internal_rate_hz: float = DEFAULT_INTERNAL_RATE_HZ,
        step_s: float = 1.0,
        window_duration_s: float = WINDOW_DURATION_S,
        features: str = "incremental",
        sensing: str = "stacked",
        controllers: str = "bank",
        noise: str = "per_device",
        dtype: str = "float64",
        metrics=None,
    ) -> None:
        self._engine = StepEngine(
            pipeline=pipeline,
            internal_rate_hz=internal_rate_hz,
            step_s=step_s,
            window_duration_s=window_duration_s,
            features=features,
            sensing=sensing,
            controllers=controllers,
            noise=noise,
            dtype=dtype,
            metrics=metrics,
        )

    @property
    def pipeline(self) -> HarPipeline:
        """The shared HAR pipeline."""
        return self._engine.pipeline

    @property
    def engine(self) -> StepEngine:
        """The shared execution core this simulator drives."""
        return self._engine

    @property
    def features(self) -> str:
        """The feature-extraction mode of the execution core."""
        return self._engine.features

    @property
    def metrics(self):
        """The engine's metrics recorder (null recorder when unmetered)."""
        return self._engine.metrics

    # ------------------------------------------------------------------
    # Batched simulation
    # ------------------------------------------------------------------
    def build_runtime(
        self, population: "DevicePopulation | Sequence[DeviceProfile]"
    ) -> FleetRuntime:
        """Build a reusable :class:`FleetRuntime` for ``population``.

        Pass the result to :meth:`run` (``runtime=``) to amortise device
        and engine-state construction across repeated runs of the same
        fleet; each run resets and replays the runtime bit-identically.
        """
        return FleetRuntime(self._engine, tuple(population))

    def run(
        self,
        population: "DevicePopulation | Sequence[DeviceProfile] | None" = None,
        duration_s: Optional[float] = None,
        trace: str = "full",
        runtime: Optional[FleetRuntime] = None,
    ) -> FleetResult:
        """Simulate every device in lock step with batched classification.

        Parameters
        ----------
        population:
            The devices to simulate.  Omit when passing ``runtime``.
        duration_s:
            Simulated seconds per device; defaults to the shortest
            schedule in the population so every device has signal for
            the whole run.
        trace:
            ``"full"`` (default) materialises one
            :class:`SimulationTrace` per device; ``"summary"`` keeps
            only O(1)-memory running aggregates per device
            (:class:`repro.sim.trace.TraceSummary`), dropping fleet
            memory from O(devices × steps) to O(devices) while yielding
            bit-identical telemetry reports.
        runtime:
            Optional reusable state from :meth:`build_runtime`.  The
            run resets it (when previously used) and replays it —
            bit-identical to a fresh run over the same population,
            minus every construction cost.

        Returns
        -------
        FleetResult
            Per-device traces (or summaries) bit-identical to
            :meth:`run_sequential` for the same population.
        """
        if runtime is not None:
            if runtime.engine is not self._engine:
                raise ValueError("runtime was built by a different simulator")
            if population is not None and tuple(population) != runtime.profiles:
                raise ValueError("population does not match the runtime's profiles")
            profiles = runtime.profiles
        elif population is not None:
            profiles = tuple(population)
        else:
            raise ValueError("run needs a population or a runtime")
        if not profiles:
            raise ValueError("population must contain at least one device")
        duration = resolve_fleet_duration(profiles, duration_s)

        start = time.perf_counter()
        if runtime is not None:
            runtime.begin_run()
            runtimes = runtime.runtimes
            state = runtime.state
        else:
            runtimes = self._engine.runtimes_from_profiles(profiles)
            state = None
        num_steps = int(round(duration / self._engine.step_s))
        traces = self._engine.run(runtimes, num_steps, trace=trace, state=state)
        elapsed = time.perf_counter() - start
        return FleetResult(
            profiles=profiles,
            traces=tuple(traces),
            elapsed_s=elapsed,
            mode="batched",
            trace_mode=trace,
        )

    # ------------------------------------------------------------------
    # Sequential reference path
    # ------------------------------------------------------------------
    def run_sequential(
        self,
        population: "DevicePopulation | Sequence[DeviceProfile]",
        duration_s: Optional[float] = None,
    ) -> FleetResult:
        """Simulate each device independently with the single-device loop.

        This is the O(N × per-device-loop) reference the batched and
        sharded engines are validated against and benchmarked over.  It
        uses the same feature and noise modes as the batched path (so a
        ``noise="batched"`` simulator is compared against a
        batched-noise reference) but reads every
        sensor individually and advances every controller per object,
        so it exercises the scalar acquisition and adaptation paths.
        Devices whose schedules are longer than ``duration_s`` are
        truncated so both paths simulate the same number of steps.
        """
        profiles = tuple(population)
        if not profiles:
            raise ValueError("population must contain at least one device")
        duration = resolve_fleet_duration(profiles, duration_s)
        num_steps = int(round(duration / self._engine.step_s))

        start = time.perf_counter()
        traces: List[SimulationTrace] = []
        for profile in profiles:
            simulator = ClosedLoopSimulator(
                pipeline=self._engine.pipeline,
                controller=profile.make_controller(),
                power_model=profile.power_model,
                noise=profile.noise,
                internal_rate_hz=self._engine.internal_rate_hz,
                step_s=self._engine.step_s,
                window_duration_s=self._engine.window_duration_s,
                features=self._engine.features,
                sensing="per_device",
                controllers="per_object",
                acquisition=self._engine.noise,
                dtype=self._engine.dtype,
                metrics=self._engine.metrics,
            )
            trace = simulator.run(list(profile.schedule), seed=profile.seed)
            trace.records = trace.records[:num_steps]
            traces.append(trace)
        elapsed = time.perf_counter() - start
        return FleetResult(
            profiles=profiles,
            traces=tuple(traces),
            elapsed_s=elapsed,
            mode="sequential",
        )


def traces_equal(left: SimulationTrace, right: SimulationTrace) -> bool:
    """Whether two traces are bit-for-bit identical, record by record."""
    if len(left) != len(right):
        return False
    for a, b in zip(left.records, right.records):
        if (
            a.time_s != b.time_s
            or a.true_activity != b.true_activity
            or a.predicted_activity != b.predicted_activity
            or a.confidence != b.confidence
            or a.config_name != b.config_name
            or a.current_ua != b.current_ua
            or a.duration_s != b.duration_s
        ):
            return False
    return True

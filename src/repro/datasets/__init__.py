"""Synthetic data generation and dataset handling.

* :mod:`repro.datasets.synthetic` — closed-form activity signal models;
* :mod:`repro.datasets.scenarios` — activity schedules (Fig. 5 script,
  Fig. 7 user-activity settings, random and routine schedules);
* :mod:`repro.datasets.windows` — labelled window datasets and the
  builder that acquires them through the simulated sensor;
* :mod:`repro.datasets.har_format` — a UCI-HAR-style on-disk format so a
  real recorded dataset can be dropped in later.
"""

from repro.datasets.har_format import load_dataset, save_dataset, validate_dataset
from repro.datasets.scenarios import (
    ActivitySetting,
    Schedule,
    ScheduleSpec,
    generate_random_schedule,
    make_daily_routine_schedule,
    make_fig5_schedule,
    make_setting_schedule,
    make_stable_schedule,
    schedule_change_count,
    schedule_duration,
)
from repro.datasets.synthetic import (
    ActivityProfile,
    ActivityRealization,
    HarmonicSpec,
    ScheduledSignal,
    SignalSegment,
    SyntheticSignalGenerator,
    default_activity_profiles,
)
from repro.datasets.windows import WindowDataset, WindowDatasetBuilder

__all__ = [
    "ActivityProfile",
    "ActivityRealization",
    "HarmonicSpec",
    "ScheduledSignal",
    "SignalSegment",
    "SyntheticSignalGenerator",
    "default_activity_profiles",
    "ActivitySetting",
    "Schedule",
    "ScheduleSpec",
    "generate_random_schedule",
    "make_daily_routine_schedule",
    "make_fig5_schedule",
    "make_setting_schedule",
    "make_stable_schedule",
    "schedule_change_count",
    "schedule_duration",
    "WindowDataset",
    "WindowDatasetBuilder",
    "load_dataset",
    "save_dataset",
    "validate_dataset",
]

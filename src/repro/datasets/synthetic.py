"""Synthetic 3-axis accelerometer signal models for the six activities.

The AdaSense authors evaluated their framework on accelerometer streams
recorded with a wrist-worn BMI160 IMU.  That dataset is not public, so
this module provides the substitute substrate: a parametric,
closed-form signal model per activity that captures the properties the
AdaSense pipeline actually exploits:

* the **orientation of gravity** in the sensor frame separates the
  postural activities (sit / stand / lie down),
* **periodic gait harmonics** with activity-specific fundamental
  frequency and per-axis amplitudes separate the locomotion activities
  (walk / upstairs / downstairs),
* slow **postural sway** gives the static activities non-zero variance.

Each activity realisation is a finite sum of a constant offset and
sinusoidal components, which has two important consequences:

1. The *windowed average* the accelerometer produces in low-power mode
   (mean over the averaging window preceding each output sample) has a
   closed form — a ``sinc`` attenuation of each sinusoid — so simulating
   large averaging windows costs the same as simulating small ones.
2. Signals are exactly reproducible from a seed, which keeps the design
   space exploration and the benchmark harness deterministic.

Sensor imperfections (noise that grows when the averaging window
shrinks, quantisation) are *not* part of the signal model; they are
applied by :class:`repro.sensors.imu.SimulatedAccelerometer`.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.activities import Activity
from repro.utils.constants import GRAVITY_MS2
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_non_negative, check_positive

#: Number of accelerometer axes (x, y, z).
NUM_AXES: int = 3


@dataclass(frozen=True)
class HarmonicSpec:
    """Specification of one sinusoidal component of an activity signal.

    Parameters
    ----------
    axis:
        Index of the accelerometer axis the component acts on (0 = x,
        1 = y, 2 = z).
    amplitude:
        Peak amplitude in m/s^2 before per-realisation jitter.
    frequency_scale:
        Frequency of the component expressed as a multiple of the
        activity's fundamental frequency (e.g. 2.0 for the second gait
        harmonic).
    """

    axis: int
    amplitude: float
    frequency_scale: float

    def __post_init__(self) -> None:
        if self.axis not in (0, 1, 2):
            raise ValueError(f"axis must be 0, 1 or 2, got {self.axis}")
        check_non_negative(self.amplitude, "amplitude")
        check_positive(self.frequency_scale, "frequency_scale")


@dataclass(frozen=True)
class ActivityProfile:
    """Parametric description of the accelerometer signature of one activity.

    A profile is a *distribution* over concrete signals; calling
    :meth:`realize` draws fundamental frequency, amplitudes and phases to
    produce an :class:`ActivityRealization` that can be evaluated at any
    point in time.

    Parameters
    ----------
    activity:
        The activity this profile describes.
    gravity_direction:
        Unit-norm direction of gravity in the sensor frame while the
        activity is performed.  This is the dominant cue separating the
        postural activities.
    base_frequency_hz:
        Fundamental frequency of the periodic component (step frequency
        for locomotion, sway frequency for postural activities).
    frequency_jitter:
        Relative half-width of the uniform jitter applied to the
        fundamental frequency per realisation (0.1 = +/-10 %).
    harmonics:
        Sinusoidal components expressed relative to the fundamental.
    amplitude_jitter:
        Relative half-width of the uniform per-realisation scaling of
        all harmonic amplitudes.
    orientation_jitter_deg:
        Standard deviation, in degrees, of the random tilt applied to
        the gravity direction per realisation (models loose strap /
        subject variability).
    """

    activity: Activity
    gravity_direction: Tuple[float, float, float]
    base_frequency_hz: float
    frequency_jitter: float
    harmonics: Tuple[HarmonicSpec, ...]
    amplitude_jitter: float = 0.15
    orientation_jitter_deg: float = 5.0

    def __post_init__(self) -> None:
        check_positive(self.base_frequency_hz, "base_frequency_hz")
        check_non_negative(self.frequency_jitter, "frequency_jitter")
        check_non_negative(self.amplitude_jitter, "amplitude_jitter")
        check_non_negative(self.orientation_jitter_deg, "orientation_jitter_deg")
        direction = np.asarray(self.gravity_direction, dtype=float)
        if direction.shape != (NUM_AXES,):
            raise ValueError("gravity_direction must have exactly three components")
        if not np.isfinite(direction).all() or np.linalg.norm(direction) == 0:
            raise ValueError("gravity_direction must be a finite, non-zero vector")

    def realize(self, rng: SeedLike = None) -> "ActivityRealization":
        """Draw one concrete signal realisation from this profile.

        Parameters
        ----------
        rng:
            Seed or generator controlling the per-realisation draws.

        Returns
        -------
        ActivityRealization
            A closed-form, deterministic signal.
        """
        generator = as_rng(rng)
        frequency = self.base_frequency_hz * (
            1.0 + generator.uniform(-self.frequency_jitter, self.frequency_jitter)
        )
        amplitude_scale = 1.0 + generator.uniform(
            -self.amplitude_jitter, self.amplitude_jitter
        )
        gravity = _jitter_direction(
            np.asarray(self.gravity_direction, dtype=float),
            self.orientation_jitter_deg,
            generator,
        )
        offset = gravity * GRAVITY_MS2

        n_components = len(self.harmonics)
        axes = np.array([h.axis for h in self.harmonics], dtype=int)
        amplitudes = (
            np.array([h.amplitude for h in self.harmonics], dtype=float)
            * amplitude_scale
        )
        frequencies = (
            np.array([h.frequency_scale for h in self.harmonics], dtype=float)
            * frequency
        )
        phases = generator.uniform(0.0, 2.0 * np.pi, size=n_components)
        return ActivityRealization(
            activity=self.activity,
            offset=offset,
            axes=axes,
            amplitudes=amplitudes,
            frequencies_hz=frequencies,
            phases=phases,
            fundamental_hz=frequency,
        )


def _jitter_direction(
    direction: np.ndarray, jitter_deg: float, rng: np.random.Generator
) -> np.ndarray:
    """Apply a small random rotation to a direction vector.

    The rotation is implemented as an additive perturbation followed by
    re-normalisation, which is accurate for the few-degree jitters used
    by the default profiles.
    """
    unit = direction / np.linalg.norm(direction)
    if jitter_deg <= 0:
        return unit
    sigma = np.deg2rad(jitter_deg)
    perturbed = unit + rng.normal(0.0, sigma, size=NUM_AXES)
    norm = np.linalg.norm(perturbed)
    if norm == 0:  # pragma: no cover - essentially impossible
        return unit
    return perturbed / norm


@dataclass(frozen=True)
class ActivityRealization:
    """A concrete, closed-form accelerometer signal for one activity bout.

    The signal on axis ``a`` is::

        s_a(t) = offset[a] + sum_i [axes[i] == a] amplitudes[i]
                 * sin(2*pi*frequencies_hz[i]*t + phases[i])

    Attributes
    ----------
    activity:
        Ground-truth activity of the bout.
    offset:
        Constant acceleration offset (gravity) per axis, m/s^2.
    axes, amplitudes, frequencies_hz, phases:
        Parallel arrays describing the sinusoidal components.
    fundamental_hz:
        The realised fundamental frequency (useful for tests and
        diagnostics).
    """

    activity: Activity
    offset: np.ndarray
    axes: np.ndarray
    amplitudes: np.ndarray
    frequencies_hz: np.ndarray
    phases: np.ndarray
    fundamental_hz: float
    #: Lazily cached axis-grouped component layout for the stacked
    #: evaluator (see :func:`evaluate_realizations_windowed`); excluded
    #: from equality/repr because it is derived from the other fields.
    _fused_layout: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False
    )

    def fused_layout(self) -> tuple:
        """Axis-grouped component arrays for the stacked evaluator.

        Returns ``(fusable, amplitudes, frequencies, phases, counts)``
        where the component arrays are reordered so each axis's
        components are contiguous (original order preserved within an
        axis) and ``counts`` gives the per-axis group sizes.  Computed
        once per realisation — the layout is immutable.
        """
        layout = self._fused_layout
        if layout is None:
            counts = np.bincount(self.axes, minlength=NUM_AXES)
            if (
                self.amplitudes.size == 0
                or (counts == 0).any()
                or (counts > _MAX_FUSED_AXIS_COMPONENTS).any()
            ):
                layout = (False, None, None, None, None)
            else:
                order = np.argsort(self.axes, kind="stable")
                layout = (
                    True,
                    self.amplitudes[order],
                    self.frequencies_hz[order],
                    self.phases[order],
                    tuple(int(count) for count in counts),
                )
            object.__setattr__(self, "_fused_layout", layout)
        return layout

    def evaluate(self, times_s: np.ndarray) -> np.ndarray:
        """Instantaneous acceleration at the given times.

        Parameters
        ----------
        times_s:
            1-D array of time stamps in seconds.

        Returns
        -------
        numpy.ndarray
            Array of shape ``(len(times_s), 3)`` in m/s^2.
        """
        return self._evaluate_impl(np.asarray(times_s, dtype=float), window_s=None)

    def evaluate_windowed(self, times_s: np.ndarray, window_s: float) -> np.ndarray:
        """Average acceleration over the window preceding each time stamp.

        This models the IMU's internal averaging filter: the value
        reported at time ``t`` is the mean of the signal over
        ``[t - window_s, t]``.  For the sinusoidal components the mean
        has the closed form ``amplitude * sinc(f * window) *
        sin(2*pi*f*(t - window/2) + phase)``.

        Parameters
        ----------
        times_s:
            1-D array of output-sample time stamps in seconds.
        window_s:
            Length of the averaging window in seconds.  A value of 0 is
            interpreted as instantaneous sampling.

        Returns
        -------
        numpy.ndarray
            Array of shape ``(len(times_s), 3)`` in m/s^2.
        """
        check_non_negative(window_s, "window_s")
        times = np.asarray(times_s, dtype=float)
        if window_s == 0.0:
            return self._evaluate_impl(times, window_s=None)
        return self._evaluate_impl(times, window_s=float(window_s))

    def _evaluate_impl(
        self, times_s: np.ndarray, window_s: Optional[float]
    ) -> np.ndarray:
        if times_s.ndim != 1:
            raise ValueError(
                f"times_s must be a 1-D array, got shape {times_s.shape}"
            )
        output = np.tile(self.offset, (times_s.shape[0], 1))
        if self.amplitudes.size == 0:
            return output

        if window_s is None:
            effective_amplitudes = self.amplitudes
            effective_times = times_s[:, None]
        else:
            # Mean over [t - L, t] of A*sin(2*pi*f*t + phi) equals
            # A*sinc(f*L)*sin(2*pi*f*(t - L/2) + phi)   (numpy sinc convention).
            effective_amplitudes = self.amplitudes * np.sinc(
                self.frequencies_hz * window_s
            )
            effective_times = times_s[:, None] - window_s / 2.0

        angles = (
            2.0 * np.pi * self.frequencies_hz[None, :] * effective_times
            + self.phases[None, :]
        )
        contributions = effective_amplitudes[None, :] * np.sin(angles)
        for axis in range(NUM_AXES):
            mask = self.axes == axis
            if mask.any():
                output[:, axis] += contributions[:, mask].sum(axis=1)
        return output

    @property
    def peak_amplitude(self) -> float:
        """Upper bound of the dynamic part of the signal in m/s^2."""
        return float(np.abs(self.amplitudes).sum()) if self.amplitudes.size else 0.0


#: Largest per-axis component count the fused stacked evaluator handles.
#: NumPy sums fewer than eight elements along an axis with a plain
#: left-to-right loop, which the fused evaluator's round-by-round adds
#: reproduce bit for bit; at eight elements NumPy switches to unrolled
#: pairwise summation and the fused path falls back to per-realisation
#: evaluation.
_MAX_FUSED_AXIS_COMPONENTS: int = 7


def evaluate_realizations_windowed(
    realizations: Sequence[ActivityRealization],
    times_s: np.ndarray,
    window_s: float,
) -> np.ndarray:
    """Evaluate many realisations over one shared time grid in one pass.

    This is the sensing hot path of the fleet engine: every device in a
    configuration group samples the *same* window times, so instead of
    one trigonometric evaluation per device the sinusoidal components of
    all realisations are concatenated and evaluated with a single
    ``sin`` over a ``(times, total_components)`` matrix.  Per-device,
    per-axis sums then fall out of one ``np.add.reduceat`` over
    axis-grouped columns.

    The result is bit-for-bit identical to::

        np.stack([r.evaluate_windowed(times_s, window_s) for r in realizations])

    Realisations the fused path cannot reproduce exactly (no components,
    or eight-plus components on one axis, where NumPy switches to
    pairwise summation) are evaluated individually.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(len(realizations), len(times_s), 3)``.
    """
    check_non_negative(window_s, "window_s")
    times = np.asarray(times_s, dtype=float)
    if times.ndim != 1:
        raise ValueError(f"times_s must be a 1-D array, got shape {times.shape}")
    output = np.empty((len(realizations), times.shape[0], NUM_AXES))

    fused: List[int] = []
    amplitude_parts: List[np.ndarray] = []
    frequency_parts: List[np.ndarray] = []
    phase_parts: List[np.ndarray] = []
    group_sizes: List[int] = []
    for index, realization in enumerate(realizations):
        # The axis-grouped layout (stable sort: each axis's components
        # contiguous, original order preserved — matching the
        # boolean-mask selection of the per-realisation path) is cached
        # on the realisation itself.
        fusable, amplitudes_d, frequencies_d, phases_d, counts = (
            realization.fused_layout()
        )
        if not fusable:
            output[index] = realization.evaluate_windowed(times, window_s)
            continue
        fused.append(index)
        amplitude_parts.append(amplitudes_d)
        frequency_parts.append(frequencies_d)
        phase_parts.append(phases_d)
        group_sizes.extend(counts)
    if not fused:
        return output

    amplitudes = np.concatenate(amplitude_parts)
    frequencies = np.concatenate(frequency_parts)
    phases = np.concatenate(phase_parts)

    if window_s == 0.0:
        effective_amplitudes = amplitudes
        effective_times = times[:, None]
    else:
        effective_amplitudes = amplitudes * np.sinc(frequencies * window_s)
        effective_times = times[:, None] - window_s / 2.0

    angles = 2.0 * np.pi * frequencies[None, :] * effective_times + phases[None, :]
    contributions = effective_amplitudes[None, :] * np.sin(angles)

    # Per-(device, axis) sums, accumulated round by round (every group's
    # k-th component in one gather) so each group is summed strictly
    # left to right — the order NumPy uses for the per-realisation
    # ``contributions[:, mask].sum(axis=1)`` with < 8 components.
    sizes = np.asarray(group_sizes)
    starts = np.concatenate([[0], np.cumsum(sizes)[:-1]])
    sums = np.zeros((times.shape[0], sizes.size))
    for round_index in range(int(sizes.max())):
        active = np.flatnonzero(sizes > round_index)
        sources = starts[active] + round_index
        if round_index == 0:
            sums[:, active] = contributions[:, sources]
        else:
            sums[:, active] = sums[:, active] + contributions[:, sources]
    values = sums.reshape(times.shape[0], len(fused), NUM_AXES).transpose(1, 0, 2)
    offsets = np.stack([realizations[i].offset for i in fused])
    output[fused] = offsets[:, None, :] + values
    return output


def _profile(
    activity: Activity,
    gravity: Tuple[float, float, float],
    base_hz: float,
    harmonics: Sequence[Tuple[int, float, float]],
    frequency_jitter: float = 0.08,
    amplitude_jitter: float = 0.15,
    orientation_jitter_deg: float = 5.0,
) -> ActivityProfile:
    """Shorthand constructor used to build the default profile set."""
    specs = tuple(
        HarmonicSpec(axis=axis, amplitude=amp, frequency_scale=scale)
        for axis, amp, scale in harmonics
    )
    return ActivityProfile(
        activity=activity,
        gravity_direction=gravity,
        base_frequency_hz=base_hz,
        frequency_jitter=frequency_jitter,
        harmonics=specs,
        amplitude_jitter=amplitude_jitter,
        orientation_jitter_deg=orientation_jitter_deg,
    )


def default_activity_profiles() -> Dict[Activity, ActivityProfile]:
    """Return the default signal profiles for the six activities.

    The profile objects are immutable and identical on every call, so
    they are built once and shared (every fleet device constructs a
    signal generator; rebuilding ~20 validated dataclasses per device
    was a measurable slice of fleet start-up).  The returned dict is a
    fresh copy, so callers may add or replace entries freely.

    The numbers are not fitted to a particular dataset; they encode the
    qualitative structure reported across the wearable HAR literature:

    * postural activities differ in gravity orientation and have only
      sub-hertz, sub-0.3 m/s^2 sway;
    * walking has a step frequency near 1.9 Hz with strong vertical and
      forward harmonics;
    * stair ascent is slower (~1.4 Hz) with a larger forward component;
    * stair descent is faster (~2.3 Hz) with pronounced impact
      harmonics.
    """
    return dict(_default_activity_profiles())


@lru_cache(maxsize=1)
def _default_activity_profiles() -> "Tuple[Tuple[Activity, ActivityProfile], ...]":
    profiles = {
        Activity.SIT: _profile(
            Activity.SIT,
            gravity=(0.42, 0.12, 0.90),
            base_hz=0.25,
            harmonics=[
                (0, 0.10, 1.0),
                (1, 0.06, 1.3),
                (2, 0.08, 0.7),
            ],
            frequency_jitter=0.3,
            orientation_jitter_deg=6.0,
        ),
        Activity.STAND: _profile(
            Activity.STAND,
            gravity=(0.04, 0.03, 1.00),
            base_hz=0.45,
            harmonics=[
                (0, 0.16, 1.0),
                (1, 0.12, 0.8),
                (2, 0.10, 1.4),
            ],
            frequency_jitter=0.3,
            orientation_jitter_deg=5.0,
        ),
        Activity.LIE: _profile(
            Activity.LIE,
            gravity=(0.95, 0.25, 0.15),
            base_hz=0.18,
            harmonics=[
                (0, 0.04, 1.0),
                (1, 0.05, 0.6),
                (2, 0.04, 1.2),
            ],
            frequency_jitter=0.4,
            orientation_jitter_deg=8.0,
        ),
        Activity.WALK: _profile(
            Activity.WALK,
            gravity=(0.08, 0.05, 0.99),
            base_hz=1.85,
            harmonics=[
                (2, 2.4, 1.0),
                (2, 1.0, 2.0),
                (2, 0.4, 3.0),
                (0, 1.3, 1.0),
                (0, 0.5, 2.0),
                (1, 0.7, 0.5),
                (1, 0.35, 1.0),
            ],
            frequency_jitter=0.12,
            amplitude_jitter=0.35,
        ),
        Activity.UPSTAIRS: _profile(
            Activity.UPSTAIRS,
            gravity=(0.26, 0.06, 0.96),
            base_hz=1.6,
            harmonics=[
                (2, 1.7, 1.0),
                (2, 0.7, 2.0),
                (2, 0.3, 3.0),
                (0, 1.6, 1.0),
                (0, 0.7, 2.0),
                (1, 0.6, 0.5),
                (1, 0.3, 1.0),
            ],
            frequency_jitter=0.12,
            amplitude_jitter=0.35,
        ),
        Activity.DOWNSTAIRS: _profile(
            Activity.DOWNSTAIRS,
            gravity=(0.12, 0.04, 0.99),
            base_hz=2.2,
            harmonics=[
                (2, 3.0, 1.0),
                (2, 1.5, 2.0),
                (2, 0.9, 3.0),
                (0, 1.1, 1.0),
                (0, 0.5, 2.0),
                (1, 0.8, 0.5),
                (1, 0.4, 1.0),
            ],
            frequency_jitter=0.13,
            amplitude_jitter=0.3,
        ),
    }
    return tuple(profiles.items())


class SyntheticSignalGenerator:
    """Factory for activity signal realisations.

    Parameters
    ----------
    profiles:
        Mapping from :class:`Activity` to :class:`ActivityProfile`.  The
        default profiles (see :func:`default_activity_profiles`) cover
        all six activities.
    seed:
        Seed for the internal generator used when ``realize`` is called
        without an explicit generator.
    """

    def __init__(
        self,
        profiles: Optional[Dict[Activity, ActivityProfile]] = None,
        seed: SeedLike = None,
    ) -> None:
        self._profiles = dict(profiles) if profiles is not None else default_activity_profiles()
        missing = [a for a in Activity if a not in self._profiles]
        if missing:
            raise ValueError(f"profiles missing for activities: {missing}")
        self._rng = as_rng(seed)

    @property
    def profiles(self) -> Dict[Activity, ActivityProfile]:
        """The profile mapping used by this generator (a shallow copy)."""
        return dict(self._profiles)

    def realize(self, activity: Activity, rng: SeedLike = None) -> ActivityRealization:
        """Draw a realisation of ``activity``.

        Parameters
        ----------
        activity:
            Activity (or anything :meth:`Activity.from_any` accepts).
        rng:
            Optional seed or generator; defaults to the generator owned
            by this factory.
        """
        activity = Activity.from_any(activity)
        generator = self._rng if rng is None else as_rng(rng)
        return self._profiles[activity].realize(generator)


@dataclass(frozen=True)
class SignalSegment:
    """One bout of a scheduled signal: an activity over a time interval."""

    start_s: float
    end_s: float
    realization: ActivityRealization

    @property
    def activity(self) -> Activity:
        """Ground-truth activity of the segment."""
        return self.realization.activity

    @property
    def duration_s(self) -> float:
        """Length of the segment in seconds."""
        return self.end_s - self.start_s

    def contains(self, time_s: float) -> bool:
        """Whether ``time_s`` falls inside this segment (half-open)."""
        return self.start_s <= time_s < self.end_s


class ScheduledSignal:
    """A piecewise activity signal following a schedule of bouts.

    The schedule is a sequence of ``(activity, duration_s)`` pairs.  Each
    bout receives its own :class:`ActivityRealization`, so repeating an
    activity later in the schedule produces a fresh (but statistically
    identical) signal.

    Parameters
    ----------
    schedule:
        Sequence of ``(activity, duration_s)`` pairs.
    generator:
        Signal generator used to realise each bout.
    seed:
        Seed controlling all per-bout draws.
    """

    def __init__(
        self,
        schedule: Sequence[Tuple[Activity, float]],
        generator: Optional[SyntheticSignalGenerator] = None,
        seed: SeedLike = None,
    ) -> None:
        if not schedule:
            raise ValueError("schedule must contain at least one (activity, duration) pair")
        self._generator = generator if generator is not None else SyntheticSignalGenerator(seed=seed)
        rng = as_rng(seed)
        segments: List[SignalSegment] = []
        cursor = 0.0
        for activity, duration in schedule:
            duration = check_positive(duration, "duration")
            realization = self._generator.realize(Activity.from_any(activity), rng)
            segments.append(
                SignalSegment(start_s=cursor, end_s=cursor + duration, realization=realization)
            )
            cursor += duration
        self._segments = segments
        self._boundaries = np.array([segment.end_s for segment in segments])
        # Plain-float copy for bisect: the spanning test runs once per
        # device per simulated second, where a C-level bisect beats the
        # numpy searchsorted call overhead several-fold.
        self._boundary_list = [float(segment.end_s) for segment in segments]

    @property
    def segments(self) -> List[SignalSegment]:
        """The realised bouts in chronological order (copy of the list)."""
        return list(self._segments)

    @property
    def duration_s(self) -> float:
        """Total duration covered by the schedule in seconds."""
        return float(self._boundaries[-1])

    def activity_at(self, time_s: float) -> Activity:
        """Ground-truth activity at ``time_s``.

        Times at or beyond the end of the schedule return the last
        bout's activity so that simulations may run up to and including
        the final boundary.
        """
        if time_s < 0:
            raise ValueError(f"time_s must be non-negative, got {time_s}")
        index = int(np.searchsorted(self._boundaries, time_s, side="right"))
        index = min(index, len(self._segments) - 1)
        return self._segments[index].activity

    def activities_at(self, times_s: np.ndarray) -> List[Activity]:
        """Ground-truth activities at many times with one lookup.

        Vectorised spelling of :meth:`activity_at`, used by the
        execution engine to precompute a whole run's ground truth.
        """
        times = np.asarray(times_s, dtype=float)
        if times.size and times.min() < 0:
            raise ValueError("times_s must be non-negative")
        indices = np.searchsorted(self._boundaries, times, side="right")
        indices = np.minimum(indices, len(self._segments) - 1)
        return [self._segments[int(index)].activity for index in indices]

    def realization_spanning(
        self, times_s: np.ndarray
    ) -> Optional[ActivityRealization]:
        """The single bout realisation covering every time stamp, if any.

        Returns ``None`` when the (sorted) times straddle a bout
        boundary, in which case the caller must fall back to the
        segment-splitting :meth:`evaluate_windowed` path.
        """
        times = np.asarray(times_s, dtype=float)
        if times.size == 0:
            return None
        # bisect_right on a float list performs exactly the comparisons
        # of np.searchsorted(..., side="right"); it is the scalar
        # spelling of the same lookup, minus the array-call overhead.
        last = len(self._segments) - 1
        first = min(bisect_right(self._boundary_list, times[0]), last)
        if first != min(bisect_right(self._boundary_list, times[-1]), last):
            return None
        return self._segments[first].realization

    def segment_at(self, time_s: float) -> SignalSegment:
        """Return the bout covering ``time_s`` (clamped to the last bout)."""
        if time_s < 0:
            raise ValueError(f"time_s must be non-negative, got {time_s}")
        index = int(np.searchsorted(self._boundaries, time_s, side="right"))
        index = min(index, len(self._segments) - 1)
        return self._segments[index]

    def evaluate(self, times_s: np.ndarray) -> np.ndarray:
        """Instantaneous acceleration at the given times."""
        return self._evaluate(np.asarray(times_s, dtype=float), window_s=0.0)

    def evaluate_windowed(self, times_s: np.ndarray, window_s: float) -> np.ndarray:
        """Averaging-window-filtered acceleration at the given times."""
        check_non_negative(window_s, "window_s")
        return self._evaluate(np.asarray(times_s, dtype=float), window_s=float(window_s))

    def _evaluate(self, times_s: np.ndarray, window_s: float) -> np.ndarray:
        if times_s.ndim != 1:
            raise ValueError(f"times_s must be 1-D, got shape {times_s.shape}")
        if times_s.size and times_s.min() < 0:
            raise ValueError("times_s must be non-negative")
        output = np.empty((times_s.shape[0], NUM_AXES), dtype=float)
        indices = np.searchsorted(self._boundaries, times_s, side="right")
        indices = np.minimum(indices, len(self._segments) - 1)
        for segment_index in np.unique(indices):
            mask = indices == segment_index
            segment = self._segments[segment_index]
            if window_s > 0.0:
                output[mask] = segment.realization.evaluate_windowed(times_s[mask], window_s)
            else:
                output[mask] = segment.realization.evaluate(times_s[mask])
        return output

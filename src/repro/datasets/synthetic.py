"""Synthetic 3-axis accelerometer signal models for the six activities.

The AdaSense authors evaluated their framework on accelerometer streams
recorded with a wrist-worn BMI160 IMU.  That dataset is not public, so
this module provides the substitute substrate: a parametric,
closed-form signal model per activity that captures the properties the
AdaSense pipeline actually exploits:

* the **orientation of gravity** in the sensor frame separates the
  postural activities (sit / stand / lie down),
* **periodic gait harmonics** with activity-specific fundamental
  frequency and per-axis amplitudes separate the locomotion activities
  (walk / upstairs / downstairs),
* slow **postural sway** gives the static activities non-zero variance.

Each activity realisation is a finite sum of a constant offset and
sinusoidal components, which has two important consequences:

1. The *windowed average* the accelerometer produces in low-power mode
   (mean over the averaging window preceding each output sample) has a
   closed form — a ``sinc`` attenuation of each sinusoid — so simulating
   large averaging windows costs the same as simulating small ones.
2. Signals are exactly reproducible from a seed, which keeps the design
   space exploration and the benchmark harness deterministic.

Sensor imperfections (noise that grows when the averaging window
shrinks, quantisation) are *not* part of the signal model; they are
applied by :class:`repro.sensors.imu.SimulatedAccelerometer`.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.activities import Activity
from repro.utils.constants import GRAVITY_MS2
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_non_negative, check_positive

#: Number of accelerometer axes (x, y, z).
NUM_AXES: int = 3


@dataclass(frozen=True)
class HarmonicSpec:
    """Specification of one sinusoidal component of an activity signal.

    Parameters
    ----------
    axis:
        Index of the accelerometer axis the component acts on (0 = x,
        1 = y, 2 = z).
    amplitude:
        Peak amplitude in m/s^2 before per-realisation jitter.
    frequency_scale:
        Frequency of the component expressed as a multiple of the
        activity's fundamental frequency (e.g. 2.0 for the second gait
        harmonic).
    """

    axis: int
    amplitude: float
    frequency_scale: float

    def __post_init__(self) -> None:
        if self.axis not in (0, 1, 2):
            raise ValueError(f"axis must be 0, 1 or 2, got {self.axis}")
        check_non_negative(self.amplitude, "amplitude")
        check_positive(self.frequency_scale, "frequency_scale")


@dataclass(frozen=True)
class ActivityProfile:
    """Parametric description of the accelerometer signature of one activity.

    A profile is a *distribution* over concrete signals; calling
    :meth:`realize` draws fundamental frequency, amplitudes and phases to
    produce an :class:`ActivityRealization` that can be evaluated at any
    point in time.

    Parameters
    ----------
    activity:
        The activity this profile describes.
    gravity_direction:
        Unit-norm direction of gravity in the sensor frame while the
        activity is performed.  This is the dominant cue separating the
        postural activities.
    base_frequency_hz:
        Fundamental frequency of the periodic component (step frequency
        for locomotion, sway frequency for postural activities).
    frequency_jitter:
        Relative half-width of the uniform jitter applied to the
        fundamental frequency per realisation (0.1 = +/-10 %).
    harmonics:
        Sinusoidal components expressed relative to the fundamental.
    amplitude_jitter:
        Relative half-width of the uniform per-realisation scaling of
        all harmonic amplitudes.
    orientation_jitter_deg:
        Standard deviation, in degrees, of the random tilt applied to
        the gravity direction per realisation (models loose strap /
        subject variability).
    """

    activity: Activity
    gravity_direction: Tuple[float, float, float]
    base_frequency_hz: float
    frequency_jitter: float
    harmonics: Tuple[HarmonicSpec, ...]
    amplitude_jitter: float = 0.15
    orientation_jitter_deg: float = 5.0
    #: Lazily cached stacked component table (axes, base amplitudes,
    #: frequency scales and the axis-grouped fused layout) shared by
    #: every realisation drawn from this profile; derived state,
    #: excluded from equality and repr.
    _components: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        check_positive(self.base_frequency_hz, "base_frequency_hz")
        check_non_negative(self.frequency_jitter, "frequency_jitter")
        check_non_negative(self.amplitude_jitter, "amplitude_jitter")
        check_non_negative(self.orientation_jitter_deg, "orientation_jitter_deg")
        direction = np.asarray(self.gravity_direction, dtype=float)
        if direction.shape != (NUM_AXES,):
            raise ValueError("gravity_direction must have exactly three components")
        if not np.isfinite(direction).all() or np.linalg.norm(direction) == 0:
            raise ValueError("gravity_direction must be a finite, non-zero vector")

    def component_table(self) -> tuple:
        """Stacked per-component arrays shared by all realisations.

        Returns ``(axes, base_amplitudes, frequency_scales, order,
        counts, fusable)``: the per-component arrays in declaration
        order, plus the stable axis-grouping permutation, per-axis
        group sizes and fused-evaluator eligibility — all of which
        depend only on the profile's harmonics, never on a
        realisation's jitter draws.  Computed once per profile; the
        returned arrays are shared, so callers must treat them as
        read-only.
        """
        table = self._components
        if table is None:
            axes = np.array([h.axis for h in self.harmonics], dtype=int)
            base_amplitudes = np.array(
                [h.amplitude for h in self.harmonics], dtype=float
            )
            frequency_scales = np.array(
                [h.frequency_scale for h in self.harmonics], dtype=float
            )
            counts = np.bincount(axes, minlength=NUM_AXES)
            fusable = bool(
                axes.size
                and not (counts == 0).any()
                and not (counts > _MAX_FUSED_AXIS_COMPONENTS).any()
            )
            order = np.argsort(axes, kind="stable")
            table = (
                axes,
                base_amplitudes,
                frequency_scales,
                order,
                tuple(int(count) for count in counts),
                fusable,
            )
            object.__setattr__(self, "_components", table)
        return table

    def realize(self, rng: SeedLike = None) -> "ActivityRealization":
        """Draw one concrete signal realisation from this profile.

        Parameters
        ----------
        rng:
            Seed or generator controlling the per-realisation draws.

        Returns
        -------
        ActivityRealization
            A closed-form, deterministic signal.
        """
        generator = as_rng(rng)
        frequency = self.base_frequency_hz * (
            1.0 + generator.uniform(-self.frequency_jitter, self.frequency_jitter)
        )
        amplitude_scale = 1.0 + generator.uniform(
            -self.amplitude_jitter, self.amplitude_jitter
        )
        gravity = _jitter_direction(
            np.asarray(self.gravity_direction, dtype=float),
            self.orientation_jitter_deg,
            generator,
        )
        offset = gravity * GRAVITY_MS2

        axes, base_amplitudes, frequency_scales, order, counts, fusable = (
            self.component_table()
        )
        amplitudes = base_amplitudes * amplitude_scale
        frequencies = frequency_scales * frequency
        phases = generator.uniform(0.0, 2.0 * np.pi, size=len(self.harmonics))
        realization = ActivityRealization(
            activity=self.activity,
            offset=offset,
            axes=axes,
            amplitudes=amplitudes,
            frequencies_hz=frequencies,
            phases=phases,
            fundamental_hz=frequency,
        )
        # The fused layout's permutation and group sizes are profile
        # state; prefill the realisation's cache so the stacked
        # evaluator never re-derives them per bout.
        layout = (
            (True, amplitudes[order], frequencies[order], phases[order], counts)
            if fusable
            else (False, None, None, None, None)
        )
        object.__setattr__(realization, "_fused_layout", layout)
        return realization


def _jitter_direction(
    direction: np.ndarray, jitter_deg: float, rng: np.random.Generator
) -> np.ndarray:
    """Apply a small random rotation to a direction vector.

    The rotation is implemented as an additive perturbation followed by
    re-normalisation, which is accurate for the few-degree jitters used
    by the default profiles.
    """
    unit = direction / np.linalg.norm(direction)
    if jitter_deg <= 0:
        return unit
    sigma = np.deg2rad(jitter_deg)
    perturbed = unit + rng.normal(0.0, sigma, size=NUM_AXES)
    norm = np.linalg.norm(perturbed)
    if norm == 0:  # pragma: no cover - essentially impossible
        return unit
    return perturbed / norm


@dataclass(frozen=True)
class ActivityRealization:
    """A concrete, closed-form accelerometer signal for one activity bout.

    The signal on axis ``a`` is::

        s_a(t) = offset[a] + sum_i [axes[i] == a] amplitudes[i]
                 * sin(2*pi*frequencies_hz[i]*t + phases[i])

    Attributes
    ----------
    activity:
        Ground-truth activity of the bout.
    offset:
        Constant acceleration offset (gravity) per axis, m/s^2.
    axes, amplitudes, frequencies_hz, phases:
        Parallel arrays describing the sinusoidal components.
    fundamental_hz:
        The realised fundamental frequency (useful for tests and
        diagnostics).
    """

    activity: Activity
    offset: np.ndarray
    axes: np.ndarray
    amplitudes: np.ndarray
    frequencies_hz: np.ndarray
    phases: np.ndarray
    fundamental_hz: float
    #: Lazily cached axis-grouped component layout for the stacked
    #: evaluator (see :func:`evaluate_realizations_windowed`); excluded
    #: from equality/repr because it is derived from the other fields.
    _fused_layout: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False
    )

    def fused_layout(self) -> tuple:
        """Axis-grouped component arrays for the stacked evaluator.

        Returns ``(fusable, amplitudes, frequencies, phases, counts)``
        where the component arrays are reordered so each axis's
        components are contiguous (original order preserved within an
        axis) and ``counts`` gives the per-axis group sizes.  Computed
        once per realisation — the layout is immutable.
        """
        layout = self._fused_layout
        if layout is None:
            counts = np.bincount(self.axes, minlength=NUM_AXES)
            if (
                self.amplitudes.size == 0
                or (counts == 0).any()
                or (counts > _MAX_FUSED_AXIS_COMPONENTS).any()
            ):
                layout = (False, None, None, None, None)
            else:
                order = np.argsort(self.axes, kind="stable")
                layout = (
                    True,
                    self.amplitudes[order],
                    self.frequencies_hz[order],
                    self.phases[order],
                    tuple(int(count) for count in counts),
                )
            object.__setattr__(self, "_fused_layout", layout)
        return layout

    def evaluate(self, times_s: np.ndarray) -> np.ndarray:
        """Instantaneous acceleration at the given times.

        Parameters
        ----------
        times_s:
            1-D array of time stamps in seconds.

        Returns
        -------
        numpy.ndarray
            Array of shape ``(len(times_s), 3)`` in m/s^2.
        """
        return self._evaluate_impl(np.asarray(times_s, dtype=float), window_s=None)

    def evaluate_windowed(self, times_s: np.ndarray, window_s: float) -> np.ndarray:
        """Average acceleration over the window preceding each time stamp.

        This models the IMU's internal averaging filter: the value
        reported at time ``t`` is the mean of the signal over
        ``[t - window_s, t]``.  For the sinusoidal components the mean
        has the closed form ``amplitude * sinc(f * window) *
        sin(2*pi*f*(t - window/2) + phase)``.

        Parameters
        ----------
        times_s:
            1-D array of output-sample time stamps in seconds.
        window_s:
            Length of the averaging window in seconds.  A value of 0 is
            interpreted as instantaneous sampling.

        Returns
        -------
        numpy.ndarray
            Array of shape ``(len(times_s), 3)`` in m/s^2.
        """
        check_non_negative(window_s, "window_s")
        times = np.asarray(times_s, dtype=float)
        if window_s == 0.0:
            return self._evaluate_impl(times, window_s=None)
        return self._evaluate_impl(times, window_s=float(window_s))

    def _evaluate_impl(
        self, times_s: np.ndarray, window_s: Optional[float]
    ) -> np.ndarray:
        if times_s.ndim != 1:
            raise ValueError(
                f"times_s must be a 1-D array, got shape {times_s.shape}"
            )
        output = np.tile(self.offset, (times_s.shape[0], 1))
        if self.amplitudes.size == 0:
            return output

        if window_s is None:
            effective_amplitudes = self.amplitudes
            effective_times = times_s[:, None]
        else:
            # Mean over [t - L, t] of A*sin(2*pi*f*t + phi) equals
            # A*sinc(f*L)*sin(2*pi*f*(t - L/2) + phi)   (numpy sinc convention).
            effective_amplitudes = self.amplitudes * np.sinc(
                self.frequencies_hz * window_s
            )
            effective_times = times_s[:, None] - window_s / 2.0

        angles = (
            2.0 * np.pi * self.frequencies_hz[None, :] * effective_times
            + self.phases[None, :]
        )
        contributions = effective_amplitudes[None, :] * np.sin(angles)
        for axis in range(NUM_AXES):
            mask = self.axes == axis
            if mask.any():
                output[:, axis] += contributions[:, mask].sum(axis=1)
        return output

    @property
    def peak_amplitude(self) -> float:
        """Upper bound of the dynamic part of the signal in m/s^2."""
        return float(np.abs(self.amplitudes).sum()) if self.amplitudes.size else 0.0


#: Largest per-axis component count the fused stacked evaluator handles.
#: NumPy sums fewer than eight elements along an axis with a plain
#: left-to-right loop, which the fused evaluator's round-by-round adds
#: reproduce bit for bit; at eight elements NumPy switches to unrolled
#: pairwise summation and the fused path falls back to per-realisation
#: evaluation.
_MAX_FUSED_AXIS_COMPONENTS: int = 7


def _resolve_dtype(dtype) -> np.dtype:
    """Normalise and validate an evaluator compute-lane dtype."""
    resolved = np.dtype(dtype)
    if resolved not in (np.dtype(np.float64), np.dtype(np.float32)):
        raise ValueError(f"dtype must be float64 or float32, got {dtype!r}")
    return resolved


def evaluate_realizations_windowed(
    realizations: Sequence[ActivityRealization],
    times_s: np.ndarray,
    window_s: float,
    dtype=np.float64,
) -> np.ndarray:
    """Evaluate many realisations over one shared time grid in one pass.

    This is the sensing hot path of the fleet engine: every device in a
    configuration group samples the *same* window times, so instead of
    one trigonometric evaluation per device the sinusoidal components of
    all realisations are concatenated and evaluated with a single
    ``sin`` over a ``(times, total_components)`` matrix.  Per-device,
    per-axis sums then fall out of one ``np.add.reduceat`` over
    axis-grouped columns.

    The result is bit-for-bit identical to::

        np.stack([r.evaluate_windowed(times_s, window_s) for r in realizations])

    Realisations the fused path cannot reproduce exactly (no components,
    or eight-plus components on one axis, where NumPy switches to
    pairwise summation) are evaluated individually.

    ``dtype`` selects the compute lane: with ``float32`` the component
    tables and the trigonometric pass run single-precision (the
    bit-identity guarantee above applies to the default float64 lane).

    Returns
    -------
    numpy.ndarray
        Array of shape ``(len(realizations), len(times_s), 3)``.
    """
    return _StackedTables(realizations, window_s, dtype=dtype).evaluate(times_s)


class _StackedTables:
    """Assembled component tables of one realisation group.

    Building the tables — concatenating every realisation's
    axis-grouped components, the ``sinc`` attenuation of the averaging
    window and the round-by-round gather plan — costs a Python pass
    over the group, but the result depends only on *which* realisations
    are grouped and the window span, never on the sample times.  The
    one-shot :func:`evaluate_realizations_windowed` builds an instance
    per call; the fleet engine's persistent per-device spelling is
    :class:`StackedEvaluationCache`.  Both run the identical
    arithmetic, which is what keeps the cached path bit-for-bit equal
    to the uncached one.
    """

    def __init__(
        self,
        realizations: Sequence[ActivityRealization],
        window_s: float,
        dtype=np.float64,
    ) -> None:
        check_non_negative(window_s, "window_s")
        self._realizations = tuple(realizations)
        self._window_s = float(window_s)
        self._dtype = _resolve_dtype(dtype)

        fused: List[int] = []
        loose: List[int] = []
        amplitude_parts: List[np.ndarray] = []
        frequency_parts: List[np.ndarray] = []
        phase_parts: List[np.ndarray] = []
        group_sizes: List[int] = []
        for index, realization in enumerate(self._realizations):
            # The axis-grouped layout (stable sort: each axis's
            # components contiguous, original order preserved —
            # matching the boolean-mask selection of the
            # per-realisation path) is cached on the realisation.
            fusable, amplitudes_d, frequencies_d, phases_d, counts = (
                realization.fused_layout()
            )
            if not fusable:
                loose.append(index)
                continue
            fused.append(index)
            amplitude_parts.append(amplitudes_d)
            frequency_parts.append(frequencies_d)
            phase_parts.append(phases_d)
            group_sizes.extend(counts)
        self._fused = np.asarray(fused, dtype=np.intp)
        self._loose = tuple(loose)
        if not fused:
            return

        amplitudes = np.concatenate(amplitude_parts)
        frequencies = np.concatenate(frequency_parts)
        self._phases = np.concatenate(phase_parts).astype(self._dtype, copy=False)
        if self._window_s == 0.0:
            effective_amplitudes = amplitudes
        else:
            effective_amplitudes = amplitudes * np.sinc(
                frequencies * self._window_s
            )
        # Tables are built in float64 and cast once, so the float32 lane
        # starts from correctly rounded double-precision constants.
        self._effective_amplitudes = effective_amplitudes.astype(
            self._dtype, copy=False
        )
        self._angular = (2.0 * np.pi * frequencies).astype(self._dtype, copy=False)

        # Gather plan for the per-(device, axis) sums: every group's
        # k-th component in one gather per round, so each group is
        # summed strictly left to right — the order NumPy uses for the
        # per-realisation ``contributions[:, mask].sum(axis=1)`` with
        # < 8 components.
        sizes = np.asarray(group_sizes)
        starts = np.concatenate([[0], np.cumsum(sizes)[:-1]])
        self._num_groups = sizes.size
        self._rounds: List[Tuple[np.ndarray, np.ndarray]] = []
        for round_index in range(int(sizes.max())):
            active = np.flatnonzero(sizes > round_index)
            self._rounds.append((active, starts[active] + round_index))
        self._offsets = np.stack(
            [self._realizations[i].offset for i in fused]
        ).astype(self._dtype, copy=False)

    def evaluate(self, times_s: np.ndarray) -> np.ndarray:
        """Stacked windowed evaluation over one shared time grid."""
        times = np.asarray(times_s, dtype=float)
        if times.ndim != 1:
            raise ValueError(
                f"times_s must be a 1-D array, got shape {times.shape}"
            )
        output = np.empty(
            (len(self._realizations), times.shape[0], NUM_AXES),
            dtype=self._dtype,
        )
        for index in self._loose:
            output[index] = self._realizations[index].evaluate_windowed(
                times, self._window_s
            )
        if not self._fused.size:
            return output

        shifted = (
            times if self._window_s == 0.0 else times - self._window_s / 2.0
        )
        effective_times = shifted.astype(self._dtype, copy=False)[:, None]
        angles = (
            self._angular[None, :] * effective_times + self._phases[None, :]
        )
        contributions = self._effective_amplitudes[None, :] * np.sin(angles)
        sums = np.zeros((times.shape[0], self._num_groups), dtype=self._dtype)
        for round_index, (active, sources) in enumerate(self._rounds):
            if round_index == 0:
                sums[:, active] = contributions[:, sources]
            else:
                sums[:, active] = sums[:, active] + contributions[:, sources]
        values = sums.reshape(
            times.shape[0], self._fused.size, NUM_AXES
        ).transpose(1, 0, 2)
        output[self._fused] = self._offsets[:, None, :] + values
        return output


class StackedEvaluationCache:
    """Persistent per-device component tables for the fleet sense path.

    The fleet engine evaluates the *same* realisations over a fresh
    time grid every tick, but the composition of a configuration group
    churns constantly as controllers adapt — so any cache keyed on the
    whole group rebuilds every tick.  This cache instead keeps one
    *row per device*: each device's sinusoidal components live at a
    fixed row of ``(devices, 3 * k)`` arrays, padded with
    zero-amplitude components to ``k`` slots per axis, and a row is
    rewritten only when that device crosses a bout boundary.  A tick's
    evaluation is then one gather of the group's rows, one
    trigonometric pass over ``(group, 3 * k, times)`` and one
    fixed-width axis reduction.

    Padding preserves bit-identity with the unpadded evaluators: each
    axis's real components keep their stable order, NumPy reduces the
    ``k < 8`` slots strictly left to right, and the trailing
    zero-amplitude slots contribute exact ``+0.0`` terms.  Results are
    bit-for-bit those of :func:`evaluate_realizations_windowed`
    (pinned by the equivalence tests); realisations the padded layout
    cannot host (empty, or more components per axis than the fused
    limit) fall back to per-realisation evaluation, exactly as the
    one-shot path does.
    """

    def __init__(self, num_devices: int = 0, dtype=np.float64) -> None:
        self._num_devices = num_devices
        #: Compute-lane dtype of the component tables, the trig pass and
        #: the returned sample blocks (float64 default; float32 for the
        #: single-precision lane).
        self._dtype = _resolve_dtype(dtype)
        #: Padded slots per axis; grows to the widest realisation seen.
        self._slots = 0
        self._refs: List[Optional[ActivityRealization]] = [None] * num_devices
        self._fusable = np.zeros(num_devices, dtype=bool)
        #: Validity interval of each cached row: the time bounds of the
        #: bout the row was built from.  A window inside the interval
        #: needs no per-device lookup at all.
        self._starts = np.full(num_devices, np.inf)
        self._ends = np.full(num_devices, -np.inf)
        self._angular: Optional[np.ndarray] = None
        self._amplitudes: Optional[np.ndarray] = None
        self._frequencies: Optional[np.ndarray] = None
        self._phases_padded: Optional[np.ndarray] = None
        self._offsets_padded: Optional[np.ndarray] = None
        #: Per-span effective amplitudes (``amp * sinc(f * span)``).
        self._effective: Dict[float, np.ndarray] = {}
        #: Reusable trig scratch, grown to the largest (group, width,
        #: times) evaluation seen; slicing it per tick keeps the hot
        #: path allocation-free.
        self._scratch = np.empty(0, dtype=self._dtype)
        #: Observability counters: rows served straight from their
        #: cached validity interval, rows re-resolved and rewritten,
        #: and rows that fell back to per-realisation evaluation.
        self.revalidations = 0
        self.rebuilds = 0
        self.fallbacks = 0
        #: Group members whose clean-signal evaluation was served from
        #: another member sharing the same row this call (fused
        #: multi-variant campaigns map every variant of one physical
        #: device to a single table row, so a configuration group that
        #: holds several variants of a device computes that device's
        #: clean signal once and gathers it).
        self.shared_hits = 0

    def _grow(self, num_devices: int, slots: int) -> None:
        """Widen the row arrays, remapping existing rows in place.

        Growth preserves every cached row — each axis block is copied
        to its offset under the new per-axis width and the padding
        stays zero — so callers never need to re-resolve devices that
        were already cached.
        """
        old_devices, old_slots = self._num_devices, self._slots
        self._num_devices = max(num_devices, self._num_devices)
        self._slots = max(slots, self._slots)
        width = NUM_AXES * self._slots
        shape = (self._num_devices, width)

        def remap(old: Optional[np.ndarray]) -> np.ndarray:
            grown = np.zeros(shape, dtype=self._dtype)
            if old is not None and old_devices and old_slots:
                for axis in range(NUM_AXES):
                    grown[
                        :old_devices,
                        axis * self._slots : axis * self._slots + old_slots,
                    ] = old[:old_devices, axis * old_slots : (axis + 1) * old_slots]
            return grown

        self._refs = self._refs + [None] * (self._num_devices - old_devices)
        self._fusable = np.concatenate(
            [self._fusable, np.zeros(self._num_devices - old_devices, dtype=bool)]
        )
        self._starts = np.concatenate(
            [self._starts, np.full(self._num_devices - old_devices, np.inf)]
        )
        self._ends = np.concatenate(
            [self._ends, np.full(self._num_devices - old_devices, -np.inf)]
        )
        self._angular = remap(self._angular)
        self._amplitudes = remap(self._amplitudes)
        self._frequencies = remap(self._frequencies)
        self._phases_padded = remap(self._phases_padded)
        offsets = np.zeros((self._num_devices, NUM_AXES), dtype=self._dtype)
        if self._offsets_padded is not None and old_devices:
            offsets[:old_devices] = self._offsets_padded[:old_devices]
        self._offsets_padded = offsets
        self._effective = {
            span: remap(effective) for span, effective in self._effective.items()
        }

    def _update_row(self, row: int, realization: ActivityRealization) -> None:
        """Write one device's padded component row."""
        fusable, amplitudes, frequencies, phases, counts = (
            realization.fused_layout()
        )
        self._refs[row] = realization
        self._fusable[row] = fusable
        if not fusable:
            return
        if max(counts) > self._slots:
            self._grow(self._num_devices, max(counts))
            self._refs[row] = realization
            self._fusable[row] = True
        slots = self._slots
        self._amplitudes[row] = 0.0
        self._angular[row] = 0.0
        self._frequencies[row] = 0.0
        self._phases_padded[row] = 0.0
        cursor = 0
        for axis, count in enumerate(counts):
            start = axis * slots
            self._amplitudes[row, start : start + count] = amplitudes[
                cursor : cursor + count
            ]
            self._frequencies[row, start : start + count] = frequencies[
                cursor : cursor + count
            ]
            self._phases_padded[row, start : start + count] = phases[
                cursor : cursor + count
            ]
            cursor += count
        self._angular[row] = 2.0 * np.pi * self._frequencies[row]
        self._offsets_padded[row] = realization.offset
        for span, effective in self._effective.items():
            if span == 0.0:
                effective[row] = self._amplitudes[row]
            else:
                effective[row] = self._amplitudes[row] * np.sinc(
                    self._frequencies[row] * span
                )

    def _dedupe_rows(self, rows: np.ndarray):
        """Detect duplicate rows in one group's evaluation request.

        Rows are the cache's unit of sharing: two group members with
        the same row index describe the *same* clean signal (the fleet
        engine derives rows from signal-object identity), so evaluating
        the unique rows once and gathering is bit-identical to
        evaluating every member — the per-row trig pass is elementwise
        and group-shape invariant.  Returns ``None`` for the common
        duplicate-free case (one extra ``np.unique`` over a small index
        vector), otherwise ``(unique_rows, first_positions, inverse)``.
        """
        if rows.shape[0] < 2:
            return None
        unique_rows, first_positions, inverse = np.unique(
            rows, return_index=True, return_inverse=True
        )
        if unique_rows.shape[0] == rows.shape[0]:
            return None
        self.shared_hits += int(rows.shape[0] - unique_rows.shape[0])
        return unique_rows, first_positions, inverse

    def _effective_for(self, span: float) -> np.ndarray:
        effective = self._effective.get(span)
        if effective is None:
            if span == 0.0:
                effective = self._amplitudes.copy()
            else:
                effective = self._amplitudes * np.sinc(self._frequencies * span)
            self._effective[span] = effective
        return effective

    def evaluate(
        self,
        realizations: Sequence[ActivityRealization],
        times_s: np.ndarray,
        window_s: float,
        rows: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Evaluate a group over one shared time grid.

        Parameters
        ----------
        realizations:
            The active realisation of every device in the group.
        times_s, window_s:
            As in :func:`evaluate_realizations_windowed`.
        rows:
            Stable per-device row indices parallel to
            ``realizations`` (the fleet engine passes fleet device
            ids).  Without rows the cache cannot persist anything and
            falls back to the one-shot evaluator.
        """
        if rows is None:
            return evaluate_realizations_windowed(
                realizations, times_s, window_s
            )
        check_non_negative(window_s, "window_s")
        window = float(window_s)
        times = np.asarray(times_s, dtype=float)
        if times.ndim != 1:
            raise ValueError(
                f"times_s must be a 1-D array, got shape {times.shape}"
            )
        rows = np.asarray(rows)
        if rows.shape[0] != len(realizations):
            raise ValueError(
                f"rows must be parallel to realizations, got {rows.shape[0]} "
                f"rows for {len(realizations)} realizations"
            )
        shared = self._dedupe_rows(rows)
        if shared is not None:
            unique_rows, first_positions, inverse = shared
            evaluated = self.evaluate(
                [realizations[position] for position in first_positions],
                times,
                window,
                rows=unique_rows,
            )
            return evaluated[inverse]
        if rows.size and int(rows.max()) >= self._num_devices:
            self._grow(int(rows.max()) + 1, max(self._slots, 1))
        for position, realization in enumerate(realizations):
            # self._refs is re-read every iteration because a row
            # update may grow (and thereby reset) the whole cache.
            row = rows[position]
            if self._refs[row] is not realization:
                self._update_row(row, realization)
                self.rebuilds += 1
            else:
                self.revalidations += 1

        output = np.empty(
            (len(realizations), times.shape[0], NUM_AXES), dtype=self._dtype
        )
        fusable_mask = self._fusable[rows]
        for position in np.flatnonzero(~fusable_mask):
            output[position] = realizations[position].evaluate_windowed(
                times, window
            )
            self.fallbacks += 1
        fused_positions = np.flatnonzero(fusable_mask)
        if fused_positions.size:
            self._evaluate_fused(
                output, fused_positions, rows[fused_positions], times, window
            )
        return output

    def evaluate_signals(
        self,
        signals: Sequence,
        rows: np.ndarray,
        times_s: np.ndarray,
        window_s: float,
    ) -> np.ndarray:
        """Evaluate one device group directly from its signals.

        The fastest spelling: instead of resolving every device's
        active realisation each tick (a Python lookup per device), the
        cache stores each row's *validity interval* — the time bounds
        of the bout it was built from — and revalidates the whole group
        with two array comparisons.  Only devices whose window left
        their cached bout touch Python: they re-resolve through
        :meth:`repro.datasets.synthetic.ScheduledSignal.spanning_segment`
        and rewrite their row.  Windows straddling a bout boundary, and
        signals without segment support, are evaluated individually for
        that tick, exactly as :func:`evaluate_realizations_windowed`
        treats its fallback cases.

        Parameters
        ----------
        signals:
            The continuous signal of every device in the group.
        rows:
            Stable per-device row indices parallel to ``signals``.
        times_s, window_s:
            As in :func:`evaluate_realizations_windowed`.
        """
        check_non_negative(window_s, "window_s")
        window = float(window_s)
        times = np.asarray(times_s, dtype=float)
        if times.ndim != 1:
            raise ValueError(
                f"times_s must be a 1-D array, got shape {times.shape}"
            )
        rows = np.asarray(rows)
        if rows.shape[0] != len(signals):
            raise ValueError(
                f"rows must be parallel to signals, got {rows.shape[0]} rows "
                f"for {len(signals)} signals"
            )
        shared = self._dedupe_rows(rows)
        if shared is not None:
            unique_rows, first_positions, inverse = shared
            evaluated = self.evaluate_signals(
                [signals[position] for position in first_positions],
                unique_rows,
                times,
                window,
            )
            return evaluated[inverse]
        output = np.empty(
            (rows.shape[0], times.shape[0], NUM_AXES), dtype=self._dtype
        )
        if not rows.size:
            return output
        if not times.size:
            # Mirror the one-shot evaluator: an empty grid yields an
            # empty result per device, touching no cached state.
            for position, signal in enumerate(signals):
                output[position] = signal.evaluate_windowed(times, window)
            return output
        if int(rows.max()) >= self._num_devices:
            self._grow(int(rows.max()) + 1, max(self._slots, 1))
        first_time = float(times[0])
        last_time = float(times[-1])
        valid = (self._starts[rows] <= first_time) & (
            last_time < self._ends[rows]
        )
        invalid_positions = np.flatnonzero(~valid)
        self.revalidations += int(rows.shape[0] - invalid_positions.shape[0])
        for position in invalid_positions:
            signal = signals[position]
            spanning = getattr(signal, "spanning_segment", None)
            segment = spanning(times) if spanning is not None else None
            if segment is None:
                output[position] = signal.evaluate_windowed(times, window)
                self.fallbacks += 1
                continue
            row = int(rows[position])
            if self._refs[row] is not segment.realization:
                self._update_row(row, segment.realization)
                self.rebuilds += 1
            self._starts[row] = segment.start_s
            duration = getattr(signal, "duration_s", None)
            # The schedule's last bout is clamped (it covers any later
            # time), so its row never expires.
            self._ends[row] = (
                np.inf
                if duration is not None and segment.end_s >= duration
                else segment.end_s
            )
            valid[position] = True
        for position in np.flatnonzero(valid & ~self._fusable[rows]):
            output[position] = self._refs[int(rows[position])].evaluate_windowed(
                times, window
            )
        fused_positions = np.flatnonzero(valid & self._fusable[rows])
        if fused_positions.size:
            self._evaluate_fused(
                output, fused_positions, rows[fused_positions], times, window
            )
        return output

    def _evaluate_fused(
        self,
        output: np.ndarray,
        positions: np.ndarray,
        fused_rows: np.ndarray,
        times: np.ndarray,
        window: float,
    ) -> None:
        """Fill ``output[positions]`` from the padded component rows."""
        shifted = times if window == 0.0 else times - window / 2.0
        shifted = shifted.astype(self._dtype, copy=False)
        angular = self._angular[fused_rows]
        phases = self._phases_padded[fused_rows]
        effective = self._effective_for(window)[fused_rows]
        # One persistent scratch block holds the (group, width, times)
        # trig intermediate; every ufunc writes in place, so the whole
        # evaluation allocates nothing proportional to the group size.
        needed = fused_rows.shape[0] * NUM_AXES * self._slots * times.shape[0]
        if self._scratch.size < needed:
            self._scratch = np.empty(needed, dtype=self._dtype)
        work = self._scratch[:needed].reshape(
            fused_rows.shape[0], NUM_AXES * self._slots, times.shape[0]
        )
        np.multiply(angular[:, :, None], shifted[None, None, :], out=work)
        np.add(work, phases[:, :, None], out=work)
        np.sin(work, out=work)
        np.multiply(effective[:, :, None], work, out=work)
        # k < 8 slots per axis reduce strictly left to right; the
        # trailing zero-amplitude slots add exact zeros, so the sums
        # equal the unpadded round-by-round accumulation bit for bit.
        sums = work.reshape(
            fused_rows.shape[0], NUM_AXES, self._slots, times.shape[0]
        ).sum(axis=2)
        np.add(self._offsets_padded[fused_rows][:, :, None], sums, out=sums)
        output[positions] = sums.transpose(0, 2, 1)


def _profile(
    activity: Activity,
    gravity: Tuple[float, float, float],
    base_hz: float,
    harmonics: Sequence[Tuple[int, float, float]],
    frequency_jitter: float = 0.08,
    amplitude_jitter: float = 0.15,
    orientation_jitter_deg: float = 5.0,
) -> ActivityProfile:
    """Shorthand constructor used to build the default profile set."""
    specs = tuple(
        HarmonicSpec(axis=axis, amplitude=amp, frequency_scale=scale)
        for axis, amp, scale in harmonics
    )
    return ActivityProfile(
        activity=activity,
        gravity_direction=gravity,
        base_frequency_hz=base_hz,
        frequency_jitter=frequency_jitter,
        harmonics=specs,
        amplitude_jitter=amplitude_jitter,
        orientation_jitter_deg=orientation_jitter_deg,
    )


def default_activity_profiles() -> Dict[Activity, ActivityProfile]:
    """Return the default signal profiles for the six activities.

    The profile objects are immutable and identical on every call, so
    they are built once and shared (every fleet device constructs a
    signal generator; rebuilding ~20 validated dataclasses per device
    was a measurable slice of fleet start-up).  The returned dict is a
    fresh copy, so callers may add or replace entries freely.

    The numbers are not fitted to a particular dataset; they encode the
    qualitative structure reported across the wearable HAR literature:

    * postural activities differ in gravity orientation and have only
      sub-hertz, sub-0.3 m/s^2 sway;
    * walking has a step frequency near 1.9 Hz with strong vertical and
      forward harmonics;
    * stair ascent is slower (~1.4 Hz) with a larger forward component;
    * stair descent is faster (~2.3 Hz) with pronounced impact
      harmonics.
    """
    return dict(_default_activity_profiles())


@lru_cache(maxsize=1)
def _default_activity_profiles() -> "Tuple[Tuple[Activity, ActivityProfile], ...]":
    profiles = {
        Activity.SIT: _profile(
            Activity.SIT,
            gravity=(0.42, 0.12, 0.90),
            base_hz=0.25,
            harmonics=[
                (0, 0.10, 1.0),
                (1, 0.06, 1.3),
                (2, 0.08, 0.7),
            ],
            frequency_jitter=0.3,
            orientation_jitter_deg=6.0,
        ),
        Activity.STAND: _profile(
            Activity.STAND,
            gravity=(0.04, 0.03, 1.00),
            base_hz=0.45,
            harmonics=[
                (0, 0.16, 1.0),
                (1, 0.12, 0.8),
                (2, 0.10, 1.4),
            ],
            frequency_jitter=0.3,
            orientation_jitter_deg=5.0,
        ),
        Activity.LIE: _profile(
            Activity.LIE,
            gravity=(0.95, 0.25, 0.15),
            base_hz=0.18,
            harmonics=[
                (0, 0.04, 1.0),
                (1, 0.05, 0.6),
                (2, 0.04, 1.2),
            ],
            frequency_jitter=0.4,
            orientation_jitter_deg=8.0,
        ),
        Activity.WALK: _profile(
            Activity.WALK,
            gravity=(0.08, 0.05, 0.99),
            base_hz=1.85,
            harmonics=[
                (2, 2.4, 1.0),
                (2, 1.0, 2.0),
                (2, 0.4, 3.0),
                (0, 1.3, 1.0),
                (0, 0.5, 2.0),
                (1, 0.7, 0.5),
                (1, 0.35, 1.0),
            ],
            frequency_jitter=0.12,
            amplitude_jitter=0.35,
        ),
        Activity.UPSTAIRS: _profile(
            Activity.UPSTAIRS,
            gravity=(0.26, 0.06, 0.96),
            base_hz=1.6,
            harmonics=[
                (2, 1.7, 1.0),
                (2, 0.7, 2.0),
                (2, 0.3, 3.0),
                (0, 1.6, 1.0),
                (0, 0.7, 2.0),
                (1, 0.6, 0.5),
                (1, 0.3, 1.0),
            ],
            frequency_jitter=0.12,
            amplitude_jitter=0.35,
        ),
        Activity.DOWNSTAIRS: _profile(
            Activity.DOWNSTAIRS,
            gravity=(0.12, 0.04, 0.99),
            base_hz=2.2,
            harmonics=[
                (2, 3.0, 1.0),
                (2, 1.5, 2.0),
                (2, 0.9, 3.0),
                (0, 1.1, 1.0),
                (0, 0.5, 2.0),
                (1, 0.8, 0.5),
                (1, 0.4, 1.0),
            ],
            frequency_jitter=0.13,
            amplitude_jitter=0.3,
        ),
    }
    return tuple(profiles.items())


class SyntheticSignalGenerator:
    """Factory for activity signal realisations.

    Parameters
    ----------
    profiles:
        Mapping from :class:`Activity` to :class:`ActivityProfile`.  The
        default profiles (see :func:`default_activity_profiles`) cover
        all six activities.
    seed:
        Seed for the internal generator used when ``realize`` is called
        without an explicit generator.
    """

    def __init__(
        self,
        profiles: Optional[Dict[Activity, ActivityProfile]] = None,
        seed: SeedLike = None,
    ) -> None:
        self._profiles = dict(profiles) if profiles is not None else default_activity_profiles()
        missing = [a for a in Activity if a not in self._profiles]
        if missing:
            raise ValueError(f"profiles missing for activities: {missing}")
        self._rng = as_rng(seed)

    @property
    def profiles(self) -> Dict[Activity, ActivityProfile]:
        """The profile mapping used by this generator (a shallow copy)."""
        return dict(self._profiles)

    def realize(self, activity: Activity, rng: SeedLike = None) -> ActivityRealization:
        """Draw a realisation of ``activity``.

        Parameters
        ----------
        activity:
            Activity (or anything :meth:`Activity.from_any` accepts).
        rng:
            Optional seed or generator; defaults to the generator owned
            by this factory.
        """
        activity = Activity.from_any(activity)
        generator = self._rng if rng is None else as_rng(rng)
        return self._profiles[activity].realize(generator)


@dataclass(frozen=True)
class SignalSegment:
    """One bout of a scheduled signal: an activity over a time interval."""

    start_s: float
    end_s: float
    realization: ActivityRealization

    @property
    def activity(self) -> Activity:
        """Ground-truth activity of the segment."""
        return self.realization.activity

    @property
    def duration_s(self) -> float:
        """Length of the segment in seconds."""
        return self.end_s - self.start_s

    def contains(self, time_s: float) -> bool:
        """Whether ``time_s`` falls inside this segment (half-open)."""
        return self.start_s <= time_s < self.end_s


class ScheduledSignal:
    """A piecewise activity signal following a schedule of bouts.

    The schedule is a sequence of ``(activity, duration_s)`` pairs.  Each
    bout receives its own :class:`ActivityRealization`, so repeating an
    activity later in the schedule produces a fresh (but statistically
    identical) signal.

    Parameters
    ----------
    schedule:
        Sequence of ``(activity, duration_s)`` pairs.
    generator:
        Signal generator used to realise each bout.
    seed:
        Seed controlling all per-bout draws.
    """

    def __init__(
        self,
        schedule: Sequence[Tuple[Activity, float]],
        generator: Optional[SyntheticSignalGenerator] = None,
        seed: SeedLike = None,
    ) -> None:
        if not schedule:
            raise ValueError("schedule must contain at least one (activity, duration) pair")
        self._generator = generator if generator is not None else SyntheticSignalGenerator(seed=seed)
        rng = as_rng(seed)
        segments: List[SignalSegment] = []
        cursor = 0.0
        for activity, duration in schedule:
            duration = check_positive(duration, "duration")
            realization = self._generator.realize(Activity.from_any(activity), rng)
            segments.append(
                SignalSegment(start_s=cursor, end_s=cursor + duration, realization=realization)
            )
            cursor += duration
        self._segments = segments
        self._boundaries = np.array([segment.end_s for segment in segments])
        # Plain-float copy for bisect: the spanning test runs once per
        # device per simulated second, where a C-level bisect beats the
        # numpy searchsorted call overhead several-fold.
        self._boundary_list = [float(segment.end_s) for segment in segments]
        # Last segment the spanning lookup resolved to.  Consecutive
        # simulation ticks almost always stay inside one bout, so the
        # hint turns the common case into two float comparisons.
        self._span_hint = 0

    @property
    def segments(self) -> List[SignalSegment]:
        """The realised bouts in chronological order (copy of the list)."""
        return list(self._segments)

    @property
    def duration_s(self) -> float:
        """Total duration covered by the schedule in seconds."""
        return float(self._boundaries[-1])

    def activity_at(self, time_s: float) -> Activity:
        """Ground-truth activity at ``time_s``.

        Times at or beyond the end of the schedule return the last
        bout's activity so that simulations may run up to and including
        the final boundary.
        """
        if time_s < 0:
            raise ValueError(f"time_s must be non-negative, got {time_s}")
        index = int(np.searchsorted(self._boundaries, time_s, side="right"))
        index = min(index, len(self._segments) - 1)
        return self._segments[index].activity

    def activities_at(self, times_s: np.ndarray) -> List[Activity]:
        """Ground-truth activities at many times with one lookup.

        Vectorised spelling of :meth:`activity_at`, used by the
        execution engine to precompute a whole run's ground truth.
        """
        times = np.asarray(times_s, dtype=float)
        if times.size and times.min() < 0:
            raise ValueError("times_s must be non-negative")
        indices = np.searchsorted(self._boundaries, times, side="right")
        indices = np.minimum(indices, len(self._segments) - 1)
        return [self._segments[int(index)].activity for index in indices]

    def realization_spanning(
        self, times_s: np.ndarray
    ) -> Optional[ActivityRealization]:
        """The single bout realisation covering every time stamp, if any.

        Returns ``None`` when the (sorted) times straddle a bout
        boundary, in which case the caller must fall back to the
        segment-splitting :meth:`evaluate_windowed` path.
        """
        segment = self.spanning_segment(times_s)
        return None if segment is None else segment.realization

    def spanning_segment(
        self, times_s: np.ndarray
    ) -> Optional[SignalSegment]:
        """The single bout covering every time stamp, if any.

        The segment spelling of :meth:`realization_spanning` — callers
        that cache per-bout state (the fleet engine's signal tables)
        use the segment's time bounds to revalidate without a lookup.
        Note the last segment is *clamped*: any window starting at or
        after its start resolves to it, even past ``end_s``.
        """
        times = np.asarray(times_s, dtype=float)
        if times.size == 0:
            return None
        last = len(self._segments) - 1
        first_time = float(times[0])
        last_time = float(times[-1])
        # Fast path: both end points still fall inside the segment the
        # previous lookup resolved to (the clamped last segment accepts
        # any time at or beyond its start).
        hinted = self._segments[self._span_hint]
        if first_time >= hinted.start_s and (
            self._span_hint == last or last_time < hinted.end_s
        ):
            return hinted
        # bisect_right on a float list performs exactly the comparisons
        # of np.searchsorted(..., side="right"); it is the scalar
        # spelling of the same lookup, minus the array-call overhead.
        first = min(bisect_right(self._boundary_list, first_time), last)
        if first != min(bisect_right(self._boundary_list, last_time), last):
            return None
        self._span_hint = first
        return self._segments[first]

    def segment_at(self, time_s: float) -> SignalSegment:
        """Return the bout covering ``time_s`` (clamped to the last bout)."""
        if time_s < 0:
            raise ValueError(f"time_s must be non-negative, got {time_s}")
        index = int(np.searchsorted(self._boundaries, time_s, side="right"))
        index = min(index, len(self._segments) - 1)
        return self._segments[index]

    def evaluate(self, times_s: np.ndarray) -> np.ndarray:
        """Instantaneous acceleration at the given times."""
        return self._evaluate(np.asarray(times_s, dtype=float), window_s=0.0)

    def evaluate_windowed(self, times_s: np.ndarray, window_s: float) -> np.ndarray:
        """Averaging-window-filtered acceleration at the given times."""
        check_non_negative(window_s, "window_s")
        return self._evaluate(np.asarray(times_s, dtype=float), window_s=float(window_s))

    def _evaluate(self, times_s: np.ndarray, window_s: float) -> np.ndarray:
        if times_s.ndim != 1:
            raise ValueError(f"times_s must be 1-D, got shape {times_s.shape}")
        if times_s.size and times_s.min() < 0:
            raise ValueError("times_s must be non-negative")
        output = np.empty((times_s.shape[0], NUM_AXES), dtype=float)
        indices = np.searchsorted(self._boundaries, times_s, side="right")
        indices = np.minimum(indices, len(self._segments) - 1)
        for segment_index in np.unique(indices):
            mask = indices == segment_index
            segment = self._segments[segment_index]
            if window_s > 0.0:
                output[mask] = segment.realization.evaluate_windowed(times_s[mask], window_s)
            else:
                output[mask] = segment.realization.evaluate(times_s[mask])
        return output

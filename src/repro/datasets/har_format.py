"""On-disk dataset format compatible with UCI-HAR-style layouts.

The authors' recorded dataset is not public and this environment has no
network access, so the reproduction generates its data synthetically.
To keep the door open for swapping a *real* recorded dataset in later,
this module defines a small plain-text directory layout closely modelled
on the widely used UCI "Human Activity Recognition Using Smartphones"
release:

``<root>/``
    ``X.txt``              whitespace-separated feature matrix, one window per row
    ``y.txt``              one integer activity label per row (0-based)
    ``config.txt``         sensor-configuration name per row
    ``features.txt``       one feature name per line
    ``activity_labels.txt``  ``<index> <label>`` pairs for readability

Both the writer and the reader operate on
:class:`repro.datasets.windows.WindowDataset`, so an externally recorded
dataset only needs to be converted into this layout once to flow through
the entire pipeline, benchmarks included.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.core.activities import ALL_ACTIVITIES, Activity
from repro.datasets.windows import WindowDataset

_FEATURES_FILE = "X.txt"
_LABELS_FILE = "y.txt"
_CONFIGS_FILE = "config.txt"
_FEATURE_NAMES_FILE = "features.txt"
_ACTIVITY_LABELS_FILE = "activity_labels.txt"


def save_dataset(root: Union[str, Path], dataset: WindowDataset) -> Path:
    """Write ``dataset`` to ``root`` in the UCI-HAR-style text layout.

    Parameters
    ----------
    root:
        Destination directory; created if it does not exist.
    dataset:
        The window dataset to serialise.

    Returns
    -------
    pathlib.Path
        The root directory written.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)

    np.savetxt(root / _FEATURES_FILE, dataset.features, fmt="%.8e")
    np.savetxt(root / _LABELS_FILE, dataset.labels, fmt="%d")
    (root / _CONFIGS_FILE).write_text(
        "\n".join(str(name) for name in dataset.config_names) + "\n"
    )
    feature_names = dataset.feature_names or [
        f"feature_{index}" for index in range(dataset.num_features)
    ]
    (root / _FEATURE_NAMES_FILE).write_text("\n".join(feature_names) + "\n")
    (root / _ACTIVITY_LABELS_FILE).write_text(
        "\n".join(f"{int(activity)} {activity.label}" for activity in ALL_ACTIVITIES)
        + "\n"
    )
    return root


def load_dataset(root: Union[str, Path]) -> WindowDataset:
    """Load a dataset previously written with :func:`save_dataset`.

    Raises
    ------
    FileNotFoundError
        If any of the required files is missing.
    ValueError
        If the files disagree on the number of windows.
    """
    root = Path(root)
    for required in (_FEATURES_FILE, _LABELS_FILE, _CONFIGS_FILE):
        if not (root / required).exists():
            raise FileNotFoundError(f"missing dataset file: {root / required}")

    features = np.atleast_2d(np.loadtxt(root / _FEATURES_FILE, dtype=float))
    labels = np.atleast_1d(np.loadtxt(root / _LABELS_FILE, dtype=int))
    config_names = np.array(
        [line for line in (root / _CONFIGS_FILE).read_text().splitlines() if line],
        dtype=object,
    )
    if features.shape[0] != labels.shape[0] or features.shape[0] != config_names.shape[0]:
        raise ValueError(
            "dataset files disagree on the number of windows: "
            f"{features.shape[0]} feature rows, {labels.shape[0]} labels, "
            f"{config_names.shape[0]} configuration names"
        )

    feature_names_path = root / _FEATURE_NAMES_FILE
    if feature_names_path.exists():
        feature_names = [
            line for line in feature_names_path.read_text().splitlines() if line
        ]
    else:
        feature_names = [f"feature_{index}" for index in range(features.shape[1])]

    return WindowDataset(
        features=features,
        labels=labels,
        config_names=config_names,
        feature_names=feature_names,
    )


def validate_dataset(dataset: WindowDataset) -> None:
    """Sanity-check a dataset loaded from disk.

    Ensures labels map to known activities and that the feature matrix is
    finite.  Raises ``ValueError`` on the first problem found.
    """
    if not np.isfinite(dataset.features).all():
        raise ValueError("dataset features contain non-finite values")
    for label in np.unique(dataset.labels):
        try:
            Activity(int(label))
        except ValueError as exc:
            raise ValueError(f"unknown activity label {label} in dataset") from exc

"""Activity schedules and user-behaviour scenarios.

The AdaSense evaluation exercises the adaptive controller on *schedules*
of activities rather than on isolated windows:

* Fig. 5 uses a scripted 120-second trace (sit for 60 s, then walk for
  60 s).
* Fig. 6 sweeps the stability threshold on traces in which the user
  changes activity at a "typical" rate.
* Fig. 7 defines three *user activity settings* — High, Medium and Low —
  that differ in how quickly the activity changes (every ~10 s for High
  versus a minute or more for Low).

This module generates those schedules.  A schedule is simply a list of
``(Activity, duration_s)`` pairs consumable by
:class:`repro.datasets.synthetic.ScheduledSignal` and by the closed-loop
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.activities import ALL_ACTIVITIES, Activity
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive

#: A schedule is an ordered list of (activity, duration in seconds) bouts.
Schedule = List[Tuple[Activity, float]]


def schedule_duration(schedule: Sequence[Tuple[Activity, float]]) -> float:
    """Total duration of a schedule in seconds."""
    return float(sum(duration for _, duration in schedule))


def schedule_change_count(schedule: Sequence[Tuple[Activity, float]]) -> int:
    """Number of activity changes (consecutive bouts with different labels)."""
    changes = 0
    for (previous, _), (current, _) in zip(schedule, schedule[1:]):
        if previous != current:
            changes += 1
    return changes


def make_fig5_schedule(
    sit_duration_s: float = 60.0, walk_duration_s: float = 60.0
) -> Schedule:
    """The scripted behavioural-analysis trace of Fig. 5.

    The user sits for the first ``sit_duration_s`` seconds and then walks
    for ``walk_duration_s`` seconds.
    """
    check_positive(sit_duration_s, "sit_duration_s")
    check_positive(walk_duration_s, "walk_duration_s")
    return [(Activity.SIT, float(sit_duration_s)), (Activity.WALK, float(walk_duration_s))]


class ActivitySetting(Enum):
    """User activity settings of Fig. 7, defined by the activity change rate.

    ``HIGH`` means the activity is unstable (changes roughly every 10
    seconds), ``MEDIUM`` sits in between, and ``LOW`` means the user
    keeps the same activity for at least a minute.
    """

    HIGH = "high"
    MEDIUM = "medium"
    LOW = "low"

    @property
    def mean_bout_duration_s(self) -> float:
        """Mean duration of one activity bout for this setting."""
        return _SETTING_MEAN_BOUT_S[self]

    @property
    def bout_duration_range_s(self) -> Tuple[float, float]:
        """Minimum and maximum bout duration drawn for this setting."""
        return _SETTING_BOUT_RANGE_S[self]


_SETTING_MEAN_BOUT_S = {
    ActivitySetting.HIGH: 10.0,
    ActivitySetting.MEDIUM: 30.0,
    ActivitySetting.LOW: 75.0,
}

_SETTING_BOUT_RANGE_S = {
    ActivitySetting.HIGH: (6.0, 14.0),
    ActivitySetting.MEDIUM: (20.0, 40.0),
    ActivitySetting.LOW: (60.0, 90.0),
}


@dataclass(frozen=True)
class ScheduleSpec:
    """Specification for random schedule generation.

    Parameters
    ----------
    total_duration_s:
        Target total duration; the last bout is truncated to match it
        exactly.
    min_bout_s, max_bout_s:
        Uniform range from which bout durations are drawn.
    activities:
        Pool of activities to draw from (defaults to all six).
    allow_repeat:
        Whether consecutive bouts may carry the same activity.  The
        default is ``False`` so that every bout boundary is a genuine
        activity change, matching how the paper describes its settings.
    weights:
        Optional per-activity draw weights parallel to ``activities``.
        ``None`` keeps the uniform draw (and its exact random stream,
        preserving seeded schedules generated before weights existed).
    """

    total_duration_s: float
    min_bout_s: float
    max_bout_s: float
    activities: Tuple[Activity, ...] = ALL_ACTIVITIES
    allow_repeat: bool = False
    weights: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        check_positive(self.total_duration_s, "total_duration_s")
        check_positive(self.min_bout_s, "min_bout_s")
        check_positive(self.max_bout_s, "max_bout_s")
        if self.max_bout_s < self.min_bout_s:
            raise ValueError(
                "max_bout_s must be greater than or equal to min_bout_s, got "
                f"{self.max_bout_s} < {self.min_bout_s}"
            )
        if not self.activities:
            raise ValueError("activities pool must not be empty")
        if not self.allow_repeat and len(self.activities) < 2:
            raise ValueError(
                "at least two activities are required when allow_repeat is False"
            )
        if self.weights is not None:
            if len(self.weights) != len(self.activities):
                raise ValueError(
                    "weights must parallel activities, got "
                    f"{len(self.weights)} weights for {len(self.activities)} activities"
                )
            if any(weight < 0 for weight in self.weights):
                raise ValueError("weights must be non-negative")
            if sum(self.weights) <= 0:
                raise ValueError("at least one weight must be positive")


def generate_random_schedule(spec: ScheduleSpec, seed: SeedLike = None) -> Schedule:
    """Generate a random schedule according to ``spec``.

    Bout durations are drawn uniformly from ``[min_bout_s, max_bout_s]``
    and activities from the pool (uniformly, or following
    ``spec.weights``), optionally avoiding immediate repeats.  The final
    bout is truncated so the schedule's total duration equals
    ``spec.total_duration_s``.
    """
    rng = as_rng(seed)
    schedule: Schedule = []
    elapsed = 0.0
    previous: Optional[Activity] = None
    while elapsed < spec.total_duration_s:
        duration = float(rng.uniform(spec.min_bout_s, spec.max_bout_s))
        remaining = spec.total_duration_s - elapsed
        duration = min(duration, remaining)
        choices = list(spec.activities)
        weights = list(spec.weights) if spec.weights is not None else None
        if not spec.allow_repeat and previous is not None and len(choices) > 1:
            keep = [index for index, activity in enumerate(choices) if activity != previous]
            choices = [choices[index] for index in keep]
            if weights is not None:
                weights = [weights[index] for index in keep]
        if weights is None:
            activity = choices[int(rng.integers(len(choices)))]
        else:
            total = float(sum(weights))
            if total <= 0:
                # Every remaining weight is zero (the only positive-weight
                # activity was the previous bout): fall back to uniform.
                activity = choices[int(rng.integers(len(choices)))]
            else:
                probabilities = [weight / total for weight in weights]
                activity = choices[int(rng.choice(len(choices), p=probabilities))]
        schedule.append((activity, duration))
        previous = activity
        elapsed += duration
    return schedule


def make_setting_schedule(
    setting: ActivitySetting,
    total_duration_s: float = 600.0,
    seed: SeedLike = None,
    activities: Tuple[Activity, ...] = ALL_ACTIVITIES,
) -> Schedule:
    """Generate a schedule for one of the Fig. 7 user activity settings."""
    check_positive(total_duration_s, "total_duration_s")
    min_bout, max_bout = setting.bout_duration_range_s
    spec = ScheduleSpec(
        total_duration_s=total_duration_s,
        min_bout_s=min_bout,
        max_bout_s=max_bout,
        activities=activities,
        allow_repeat=False,
    )
    return generate_random_schedule(spec, seed=seed)


def make_stable_schedule(
    activity: Activity, total_duration_s: float = 600.0
) -> Schedule:
    """A degenerate schedule in which the user never changes activity.

    Useful for measuring the best-case power savings of the adaptive
    controller (the sensor can stay at the lowest-power state almost all
    the time).
    """
    check_positive(total_duration_s, "total_duration_s")
    return [(Activity.from_any(activity), float(total_duration_s))]


class ScenarioArchetype(Enum):
    """Lifestyle archetypes used to build heterogeneous device fleets.

    Each archetype biases the activity mix and the bout durations the
    way a particular user group would: an elderly user changes activity
    rarely and mostly rests, an athlete strings together short dynamic
    bouts, an office worker sits for long stretches, and so on.  They
    complement the change-rate-only :class:`ActivitySetting` definitions
    of Fig. 7 with populations that differ in *what* the user does, not
    just how often it changes.
    """

    ELDERLY = "elderly"
    POST_OP_REHAB = "post_op_rehab"
    ATHLETE = "athlete"
    OFFICE_WORKER = "office_worker"
    NIGHT_SHIFT = "night_shift"

    @property
    def activities(self) -> Tuple[Activity, ...]:
        """Activity pool of this archetype."""
        return _ARCHETYPE_SPECS[self][0]

    @property
    def weights(self) -> Tuple[float, ...]:
        """Draw weights parallel to :attr:`activities`."""
        return _ARCHETYPE_SPECS[self][1]

    @property
    def bout_duration_range_s(self) -> Tuple[float, float]:
        """Minimum and maximum bout duration drawn for this archetype."""
        return _ARCHETYPE_SPECS[self][2]


_ARCHETYPE_SPECS: dict = {
    # archetype: (activities, weights, (min_bout_s, max_bout_s))
    ScenarioArchetype.ELDERLY: (
        (Activity.LIE, Activity.SIT, Activity.STAND, Activity.WALK),
        (0.30, 0.40, 0.20, 0.10),
        (45.0, 150.0),
    ),
    ScenarioArchetype.POST_OP_REHAB: (
        (Activity.LIE, Activity.SIT, Activity.STAND, Activity.WALK),
        (0.35, 0.30, 0.15, 0.20),
        (20.0, 60.0),
    ),
    ScenarioArchetype.ATHLETE: (
        (
            Activity.WALK,
            Activity.UPSTAIRS,
            Activity.DOWNSTAIRS,
            Activity.STAND,
            Activity.SIT,
        ),
        (0.40, 0.20, 0.20, 0.10, 0.10),
        (8.0, 30.0),
    ),
    ScenarioArchetype.OFFICE_WORKER: (
        (
            Activity.SIT,
            Activity.STAND,
            Activity.WALK,
            Activity.UPSTAIRS,
            Activity.DOWNSTAIRS,
        ),
        (0.60, 0.15, 0.15, 0.05, 0.05),
        (60.0, 240.0),
    ),
    ScenarioArchetype.NIGHT_SHIFT: (
        (Activity.STAND, Activity.WALK, Activity.SIT, Activity.LIE),
        (0.35, 0.30, 0.20, 0.15),
        (25.0, 90.0),
    ),
}


def make_archetype_schedule(
    archetype: ScenarioArchetype,
    total_duration_s: float = 600.0,
    seed: SeedLike = None,
) -> Schedule:
    """Generate a schedule following one of the lifestyle archetypes."""
    check_positive(total_duration_s, "total_duration_s")
    archetype = ScenarioArchetype(archetype)
    min_bout, max_bout = archetype.bout_duration_range_s
    spec = ScheduleSpec(
        total_duration_s=total_duration_s,
        min_bout_s=min_bout,
        max_bout_s=max_bout,
        activities=archetype.activities,
        allow_repeat=False,
        weights=archetype.weights,
    )
    return generate_random_schedule(spec, seed=seed)


def make_daily_routine_schedule(seed: SeedLike = None) -> Schedule:
    """A longer, loosely realistic "day in the life" schedule.

    The routine strings together postural and locomotion bouts the way a
    morning at home plus a commute might: lying, sitting, standing,
    walking and stair use, with bout lengths between half a minute and a
    few minutes.  It is used by the example applications and by
    integration tests as a richer workload than the synthetic settings.
    """
    rng = as_rng(seed)
    template: List[Tuple[Activity, float, float]] = [
        (Activity.LIE, 120.0, 240.0),
        (Activity.SIT, 60.0, 120.0),
        (Activity.STAND, 20.0, 60.0),
        (Activity.WALK, 60.0, 180.0),
        (Activity.UPSTAIRS, 15.0, 40.0),
        (Activity.WALK, 30.0, 90.0),
        (Activity.SIT, 120.0, 300.0),
        (Activity.STAND, 15.0, 45.0),
        (Activity.DOWNSTAIRS, 15.0, 40.0),
        (Activity.WALK, 60.0, 180.0),
        (Activity.SIT, 60.0, 180.0),
    ]
    return [
        (activity, float(rng.uniform(low, high))) for activity, low, high in template
    ]

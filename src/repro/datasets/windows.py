"""Labelled window datasets for training and evaluating the classifier.

The paper trains its shared classifier on "an extensive data set of 7300
activity windows of the four optimal accelerometer configurations".
This module builds the synthetic equivalent: it draws activity bouts
from the signal generator, acquires 2-second windows through the
simulated accelerometer under the requested sensor configurations, runs
the unified feature extraction and packages everything into a
:class:`WindowDataset` that the ML substrate consumes directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.activities import ALL_ACTIVITIES, Activity
from repro.core.config import DEFAULT_SPOT_STATES, SensorConfig
from repro.core.features import (
    WINDOW_DURATION_S,
    FeatureExtractor,
    default_feature_extractor,
)
from repro.datasets.synthetic import SyntheticSignalGenerator
from repro.sensors.imu import DEFAULT_INTERNAL_RATE_HZ, NoiseModel, SimulatedAccelerometer
from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive_int


@dataclass
class WindowDataset:
    """Extracted features, labels and provenance for a set of windows.

    Attributes
    ----------
    features:
        Array of shape ``(n_windows, n_features)``.
    labels:
        Integer activity labels, shape ``(n_windows,)``.
    config_names:
        Name of the sensor configuration each window was acquired under,
        shape ``(n_windows,)``.
    feature_names:
        Names of the feature columns.
    """

    features: np.ndarray
    labels: np.ndarray
    config_names: np.ndarray
    feature_names: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=float)
        self.labels = np.asarray(self.labels, dtype=int)
        self.config_names = np.asarray(self.config_names, dtype=object)
        if self.features.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {self.features.shape}")
        n = self.features.shape[0]
        if self.labels.shape != (n,):
            raise ValueError("labels must have one entry per window")
        if self.config_names.shape != (n,):
            raise ValueError("config_names must have one entry per window")
        if self.feature_names and len(self.feature_names) != self.features.shape[1]:
            raise ValueError(
                "feature_names length must match the number of feature columns"
            )

    def __len__(self) -> int:
        return int(self.features.shape[0])

    @property
    def num_features(self) -> int:
        """Number of feature columns."""
        return int(self.features.shape[1])

    def class_counts(self) -> Dict[Activity, int]:
        """Number of windows per activity."""
        counts: Dict[Activity, int] = {activity: 0 for activity in ALL_ACTIVITIES}
        for label in self.labels:
            counts[Activity(int(label))] += 1
        return counts

    def config_counts(self) -> Dict[str, int]:
        """Number of windows per sensor configuration."""
        counts: Dict[str, int] = {}
        for name in self.config_names:
            counts[str(name)] = counts.get(str(name), 0) + 1
        return counts

    def subset(self, mask: np.ndarray) -> "WindowDataset":
        """Return the windows selected by a boolean mask."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (len(self),):
            raise ValueError("mask must have one entry per window")
        return WindowDataset(
            features=self.features[mask],
            labels=self.labels[mask],
            config_names=self.config_names[mask],
            feature_names=list(self.feature_names),
        )

    def for_config(self, config: "SensorConfig | str") -> "WindowDataset":
        """Windows acquired under one specific sensor configuration."""
        name = config.name if isinstance(config, SensorConfig) else str(config)
        mask = np.array([str(item) == name for item in self.config_names])
        return self.subset(mask)

    def split(
        self, test_fraction: float = 0.25, seed: SeedLike = None
    ) -> Tuple["WindowDataset", "WindowDataset"]:
        """Stratified train/test split preserving activity proportions."""
        from repro.ml.preprocessing import train_test_split

        indices = np.arange(len(self))
        train_idx, test_idx, _, _ = train_test_split(
            indices[:, None], self.labels, test_fraction=test_fraction, seed=seed
        )
        train_mask = np.zeros(len(self), dtype=bool)
        train_mask[train_idx[:, 0].astype(int)] = True
        return self.subset(train_mask), self.subset(~train_mask)

    @classmethod
    def merge(cls, datasets: Sequence["WindowDataset"]) -> "WindowDataset":
        """Concatenate several datasets with identical feature columns."""
        if not datasets:
            raise ValueError("need at least one dataset to merge")
        names = datasets[0].feature_names
        for dataset in datasets[1:]:
            if dataset.num_features != datasets[0].num_features:
                raise ValueError("datasets disagree on the number of features")
        return cls(
            features=np.vstack([dataset.features for dataset in datasets]),
            labels=np.concatenate([dataset.labels for dataset in datasets]),
            config_names=np.concatenate(
                [dataset.config_names for dataset in datasets]
            ),
            feature_names=list(names),
        )


class WindowDatasetBuilder:
    """Builds :class:`WindowDataset` instances from the synthetic substrate.

    Parameters
    ----------
    generator:
        Signal generator providing activity realisations.
    extractor:
        Feature extractor applied to every acquired window.
    noise:
        Sensor noise model (shared across all acquisitions).
    internal_rate_hz:
        Internal conversion rate of the simulated accelerometer.
    seed:
        Master seed; every window derives its own child stream from it.
    """

    def __init__(
        self,
        generator: Optional[SyntheticSignalGenerator] = None,
        extractor: Optional[FeatureExtractor] = None,
        noise: Optional[NoiseModel] = None,
        internal_rate_hz: float = DEFAULT_INTERNAL_RATE_HZ,
        seed: SeedLike = None,
    ) -> None:
        self._rng = as_rng(seed)
        self._generator = (
            generator
            if generator is not None
            else SyntheticSignalGenerator(seed=self._rng)
        )
        self._extractor = extractor if extractor is not None else default_feature_extractor()
        self._noise = noise if noise is not None else NoiseModel()
        self._internal_rate_hz = float(internal_rate_hz)

    @property
    def extractor(self) -> FeatureExtractor:
        """The feature extractor used for every window."""
        return self._extractor

    @property
    def noise_model(self) -> NoiseModel:
        """The sensor noise model used for every acquisition."""
        return self._noise

    def build(
        self,
        configs: Sequence[SensorConfig] = DEFAULT_SPOT_STATES,
        windows_per_activity_per_config: int = 60,
        activities: Sequence[Activity] = ALL_ACTIVITIES,
        window_duration_s: float = WINDOW_DURATION_S,
    ) -> WindowDataset:
        """Generate a labelled, feature-extracted window dataset.

        Parameters
        ----------
        configs:
            Sensor configurations to acquire windows under (default: the
            four Pareto-optimal SPOT states).
        windows_per_activity_per_config:
            Number of windows per (activity, configuration) pair.
        activities:
            Activities to include (default: all six).
        window_duration_s:
            Length of each acquired window.

        Returns
        -------
        WindowDataset
        """
        check_positive_int(
            windows_per_activity_per_config, "windows_per_activity_per_config"
        )
        if not configs:
            raise ValueError("configs must not be empty")
        if not activities:
            raise ValueError("activities must not be empty")

        feature_rows: List[np.ndarray] = []
        labels: List[int] = []
        config_names: List[str] = []

        for config in configs:
            for activity in activities:
                activity = Activity.from_any(activity)
                for _ in range(windows_per_activity_per_config):
                    window = self.acquire_raw_window(activity, config, window_duration_s)
                    feature_rows.append(
                        self._extractor.extract(window, config.sampling_hz)
                    )
                    labels.append(int(activity))
                    config_names.append(config.name)

        return WindowDataset(
            features=np.vstack(feature_rows),
            labels=np.array(labels, dtype=int),
            config_names=np.array(config_names, dtype=object),
            feature_names=self._extractor.feature_names(),
        )

    def build_for_config(
        self,
        config: SensorConfig,
        windows_per_activity: int = 60,
        activities: Sequence[Activity] = ALL_ACTIVITIES,
    ) -> WindowDataset:
        """Convenience wrapper building a dataset for a single configuration."""
        return self.build(
            configs=[config],
            windows_per_activity_per_config=windows_per_activity,
            activities=activities,
        )

    def acquire_raw_window(
        self,
        activity: Activity,
        config: SensorConfig,
        window_duration_s: float = WINDOW_DURATION_S,
    ) -> np.ndarray:
        """Simulate the acquisition of one raw window of ``activity`` under ``config``.

        Returns the raw ``(n, 3)`` sample array without feature
        extraction.  Used by the intensity-based baseline to calibrate
        its derivative threshold and by tests that need raw sensor data.
        """
        realization = self._generator.realize(activity, self._rng)
        sensor = SimulatedAccelerometer(
            signal=realization,
            noise=self._noise,
            internal_rate_hz=self._internal_rate_hz,
            seed=self._rng,
        )
        # Start the window at a random offset into the bout so that the
        # gait phase at the window boundary varies between windows.
        start_offset = float(self._rng.uniform(0.0, 4.0))
        window = sensor.read_window(
            end_time_s=start_offset + window_duration_s,
            duration_s=window_duration_s,
            config=config,
        )
        return window.samples

"""Logging configuration shared by the CLI and the scripts.

One entry point, :func:`configure_logging`, maps the CLI's
``--log-level`` flag onto the standard :mod:`logging` machinery; module
code obtains loggers the usual way (``logging.getLogger(__name__)``).
The sharded coordinator additionally uses :func:`shard_logger` so every
worker-related line carries a stable per-shard prefix.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

__all__ = ["LOG_LEVELS", "configure_logging", "shard_logger"]

#: Accepted ``--log-level`` values, least to most verbose.
LOG_LEVELS = ("critical", "error", "warning", "info", "debug")


def configure_logging(level: Optional[str], stream=None) -> None:
    """Configure the root ``repro`` logger for CLI / script runs.

    Parameters
    ----------
    level:
        One of :data:`LOG_LEVELS` (case-insensitive) or ``None`` to
        leave logging untouched (library default: messages propagate to
        whatever the host application configured).
    stream:
        Destination stream, defaulting to ``sys.stderr`` so log lines
        never interleave with a command's stdout tables.
    """
    if level is None:
        return
    normalized = level.strip().lower()
    if normalized not in LOG_LEVELS:
        raise ValueError(
            f"log level must be one of {LOG_LEVELS}, got {level!r}"
        )
    logger = logging.getLogger("repro")
    logger.setLevel(getattr(logging, normalized.upper()))
    # Reconfiguring (e.g. repeated main() calls in tests) replaces the
    # handler instead of stacking duplicates.
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    logger.addHandler(handler)
    logger.propagate = False


class _ShardPrefixAdapter(logging.LoggerAdapter):
    """Prepends a ``[shard N]`` prefix to every record's message."""

    def process(self, msg, kwargs):
        return f"[shard {self.extra['shard']}] {msg}", kwargs


def shard_logger(shard_index: int) -> logging.LoggerAdapter:
    """A logger whose records carry a ``[shard N]`` prefix."""
    return _ShardPrefixAdapter(
        logging.getLogger("repro.exec.sharding"), {"shard": shard_index}
    )

"""Exporters for :class:`repro.obs.metrics.MetricsSnapshot`.

Three formats, each aimed at a different consumer:

* :func:`write_metrics_json` — a structured snapshot file (counters,
  gauges, histogram quantiles) for scripts and CI artifacts;
* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event JSON format (``{"traceEvents": [...]}``), loadable in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``; one lane
  (``tid``) per shard;
* :func:`to_prometheus_text` — the Prometheus text exposition format
  (counters and gauges as-is, histograms as summaries with
  ``quantile`` labels), servable from any scrape endpoint.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsSnapshot

__all__ = [
    "COUNTER_GLOSSARY",
    "snapshot_to_dict",
    "to_chrome_trace",
    "to_prometheus_text",
    "write_chrome_trace",
    "write_metrics_json",
]

_METRIC_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: One-line meanings of the well-known metric names, mirrored by the
#: README's counter glossary and emitted as ``# HELP`` lines by
#: :func:`to_prometheus_text`.
COUNTER_GLOSSARY: Dict[str, str] = {
    "engine.runs": "engine.run invocations (one per shard attempt segment)",
    "engine.ticks": "simulated classification ticks across all devices",
    "engine.config_groups": "per-tick sensor-configuration cohorts formed",
    "engine.config_switches": "devices that changed configuration on a tick",
    "features.incremental_windows": "windows served by the incremental path",
    "noise.refills": "pooled noise-stream block refills",
    "noise.pool_bypasses": "acquisitions too large for the noise pool",
    "signal_cache.revalidations": "signal-table cache validity re-checks",
    "signal_cache.rebuilds": "signal-table cache rebuilds",
    "signal_cache.fallbacks": "acquisitions outside the table cache",
    "plan_cache.hits": "spectral plan cache hits",
    "plan_cache.misses": "spectral plan cache misses",
    "shard.rounds": "checkpoint rounds simulated across shard attempts",
    "shard.retries": "shard attempts re-scheduled after a failure",
    "shard.failures": "failed shard attempts (death, error, timeout, corruption)",
    "shard.timeouts": "shard attempts terminated at the per-shard timeout",
    "shard.corrupt_payloads": "shard results rejected by payload validation",
    "checkpoint.saves": "round checkpoints written by shard workers",
    "checkpoint.loads": "checkpoints loaded by resumed or retried shards",
    "checkpoint.bytes": "total checkpoint bytes written",
    "heartbeat.emitted": "in-flight heartbeat events emitted by shard workers",
    "heartbeat.received": "heartbeat events folded by the run monitor",
    "heartbeat.malformed": "in-flight events the run monitor could not parse",
    "straggler.flags": "shards flagged by the online straggler detector",
    "flight.events": "events folded into flight-recorder rings",
    "flight.dumps": "flight-recorder crash dumps written on attempt failures",
    "campaign.variants": "controller variants fused into the campaign fleet",
    "campaign.devices": "physical devices the campaign grid spans",
    "campaign.unique_devices": "virtual devices simulated after behaviour dedupe",
    "campaign.shared_group_hits": "signal-table rows gathered from a shared variant's evaluation",
}


def snapshot_to_dict(
    snapshot: MetricsSnapshot, extra: Optional[Dict[str, object]] = None
) -> Dict[str, object]:
    """The JSON-ready form of a snapshot, with optional extra metadata."""
    payload = snapshot.to_dict()
    if extra:
        payload["meta"] = dict(extra)
    return payload


def write_metrics_json(
    snapshot: MetricsSnapshot,
    path: str,
    extra: Optional[Dict[str, object]] = None,
    indent: int = 2,
) -> str:
    """Write the snapshot as a JSON file; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            snapshot_to_dict(snapshot, extra), handle, indent=indent,
            sort_keys=True,
        )
        handle.write("\n")
    return path


def to_chrome_trace(snapshot: MetricsSnapshot) -> Dict[str, object]:
    """Build a Chrome trace-event document from the snapshot's spans.

    Events are complete spans (``"ph": "X"``) with microsecond
    timestamps rebased to the earliest span, so timelines recorded by
    forked shard workers (which share the monotonic clock) align in one
    view; each shard's events sit in their own ``tid`` lane, named via
    thread-metadata events.
    """
    events: List[Dict[str, object]] = []
    origin_ns = min(
        (span.start_ns for span in snapshot.spans), default=0
    )
    tids = sorted({span.tid for span in snapshot.spans})
    for tid in tids:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": f"shard-{tid}"},
            }
        )
    for span in snapshot.spans:
        events.append(
            {
                "name": span.name,
                "cat": "engine",
                "ph": "X",
                "ts": (span.start_ns - origin_ns) / 1e3,
                "dur": span.duration_ns / 1e3,
                "pid": 0,
                "tid": span.tid,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(snapshot: MetricsSnapshot, path: str) -> str:
    """Write the Chrome trace-event JSON file; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(snapshot), handle)
        handle.write("\n")
    return path


def _prometheus_name(name: str, prefix: str) -> str:
    return prefix + _METRIC_NAME_RE.sub("_", name)


def to_prometheus_text(
    snapshot: MetricsSnapshot, prefix: str = "repro_"
) -> str:
    """Render the snapshot in the Prometheus text exposition format.

    Counters and gauges map directly; histograms are exposed as
    summaries (``quantile`` labels plus ``_sum``/``_count`` series) so
    p50/p95/p99 are scrapeable without bucket math on the server.
    Metrics listed in :data:`COUNTER_GLOSSARY` get a ``# HELP`` line.
    """
    lines: List[str] = []
    for name in sorted(snapshot.counters):
        metric = _prometheus_name(name, prefix)
        help_text = COUNTER_GLOSSARY.get(name)
        if help_text is not None:
            lines.append(f"# HELP {metric} {help_text}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {snapshot.counters[name]:g}")
    for name in sorted(snapshot.gauges):
        metric = _prometheus_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {snapshot.gauges[name]:g}")
    for name in sorted(snapshot.histograms):
        histogram = snapshot.histograms[name]
        metric = _prometheus_name(name, prefix)
        lines.append(f"# TYPE {metric} summary")
        if histogram.count:
            for q in (50.0, 95.0, 99.0):
                lines.append(
                    f'{metric}{{quantile="{q / 100.0:g}"}} '
                    f"{histogram.percentile(q):g}"
                )
        lines.append(f"{metric}_sum {histogram.total:g}")
        lines.append(f"{metric}_count {histogram.count}")
    return "\n".join(lines) + "\n"

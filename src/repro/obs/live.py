"""Live run telemetry: heartbeats, progress/ETA and straggler detection.

Everything the platform reported before this module was post-hoc: the
supervisor (:mod:`repro.exec.resilience`) only learns about a shard
when its result (or corpse) comes back, so a long campaign is a black
box while it runs.  This module adds the *in-flight* plane:

* shard workers emit small **heartbeat** events over their existing
  result pipe (built with :func:`build_heartbeat`: round/step progress,
  devices simulated, device-steps/s, per-phase span deltas, RSS),
  interleaved with the ``ok``/``error`` result protocol;
* the coordinator-side :class:`RunMonitor` folds them into live
  progress/ETA, per-shard rate gauges and an **online straggler
  detector** (relative-lag rule over heartbeat rates — the hook a
  future elastic rebalancer will consume at round boundaries);
* the same stream renders as a ``--watch`` TTY status line and an
  append-only NDJSON event file (``--events``), schema-tagged
  :data:`LIVE_SCHEMA` and checkable with :func:`validate_events_file`;
* every event also feeds the per-shard
  :class:`repro.obs.flight.FlightRecorder` ring, so worker deaths,
  timeouts and corrupt payloads leave a crash artifact behind.

Monitoring never perturbs the simulation: workers only read clocks,
counters and ``/proc`` — never random streams or sample arrays — and
heartbeat pacing only re-segments the engine loop, which is pinned
bit-identical to unsegmented execution by the resilience tests.
"""

from __future__ import annotations

import json
import os
import sys
import time
from statistics import median
from typing import Callable, Dict, IO, List, Optional, Tuple

from repro.obs.flight import DEFAULT_RING_SIZE, FlightRecorder

__all__ = [
    "DEFAULT_HEARTBEAT_S",
    "LIVE_SCHEMA",
    "RunMonitor",
    "build_heartbeat",
    "current_rss_bytes",
    "validate_events_file",
    "validate_live_event",
]

#: Schema tag stamped on the ``run_start`` event of every NDJSON stream.
LIVE_SCHEMA = "repro.live/v1"

#: Default heartbeat interval in *simulated* seconds.  Simulated time is
#: the only clock workers share deterministically, so pacing beats by it
#: keeps the event schedule reproducible run-to-run.
DEFAULT_HEARTBEAT_S = 10.0

#: Minimum keys per event type; :func:`validate_live_event` enforces
#: these, so the NDJSON stream is machine-checkable in CI.
_EVENT_REQUIRED: Dict[str, Tuple[str, ...]] = {
    "run_start": ("schema", "shards", "devices", "num_steps"),
    "launch": ("shard", "attempt"),
    "attempt_start": ("shard", "attempt", "steps_done", "num_steps", "devices"),
    "round_start": ("shard", "attempt", "round"),
    "heartbeat": (
        "shard", "attempt", "round", "steps_done", "num_steps", "devices",
        "rate", "interval_s", "phase_s",
    ),
    "checkpoint": ("shard", "attempt", "rounds_done", "steps_done"),
    "attempt_failure": ("shard", "attempt", "kind", "reason"),
    "shard_complete": ("shard", "attempts"),
    "straggler": ("shard", "rate", "median_rate"),
    "straggler_cleared": ("shard",),
    "run_complete": ("ok",),
}


def current_rss_bytes() -> Optional[int]:
    """Resident-set size of this process, or ``None`` when unknowable.

    Reads ``/proc/self/statm`` (Linux) and falls back to
    :func:`resource.getrusage` (peak RSS) elsewhere — no third-party
    process libraries, so the hot path never grows a dependency.
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            pages = int(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except Exception:  # noqa: BLE001 - not Linux / procfs unavailable
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is bytes on macOS, kibibytes on Linux/BSD.
        return int(peak) if sys.platform == "darwin" else int(peak) * 1024
    except Exception:  # noqa: BLE001 - platform without getrusage
        return None


def build_heartbeat(
    shard: int,
    attempt: int,
    round_index: int,
    steps_done: int,
    num_steps: int,
    devices: int,
    elapsed_s: float,
    interval_s: float,
    steps_delta: int,
    phase_s: Dict[str, float],
    rss_bytes: Optional[int] = None,
) -> Dict[str, object]:
    """Assemble one heartbeat event dict (the worker-side schema).

    ``rate`` is device-steps per wall-clock second over the reporting
    interval — the straggler detector's common currency, because it is
    comparable across shards of different sizes.
    """
    rate = (
        devices * steps_delta / interval_s if interval_s > 0.0 else 0.0
    )
    return {
        "event": "heartbeat",
        "shard": int(shard),
        "attempt": int(attempt),
        "round": int(round_index),
        "steps_done": int(steps_done),
        "num_steps": int(num_steps),
        "devices": int(devices),
        "elapsed_s": round(float(elapsed_s), 6),
        "interval_s": round(float(interval_s), 6),
        "rate": round(float(rate), 3),
        "phase_s": {
            name: round(float(value), 6)
            for name, value in sorted(phase_s.items())
        },
        "rss_bytes": rss_bytes,
    }


def validate_live_event(payload: object) -> str:
    """Check one decoded NDJSON event; returns its type or raises.

    Raises :class:`ValueError` on unknown event types, missing required
    keys, a bad timestamp, or a ``run_start`` with the wrong schema tag.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"live event must be an object, got {type(payload).__name__}")
    name = payload.get("event")
    if name not in _EVENT_REQUIRED:
        raise ValueError(f"unknown live event type {name!r}")
    stamp = payload.get("t")
    if not isinstance(stamp, (int, float)) or stamp < 0:
        raise ValueError(f"live event {name!r} has bad timestamp {stamp!r}")
    missing = [key for key in _EVENT_REQUIRED[name] if key not in payload]
    if missing:
        raise ValueError(f"live event {name!r} missing keys {missing}")
    if name == "run_start" and payload["schema"] != LIVE_SCHEMA:
        raise ValueError(
            f"run_start schema {payload['schema']!r} != {LIVE_SCHEMA!r}"
        )
    return str(name)


def validate_events_file(path: "str | os.PathLike") -> Dict[str, int]:
    """Validate a whole NDJSON event stream; returns per-type counts.

    Every line must decode to a valid event and the stream must open
    with a ``run_start`` — the contract the CI smoke asserts.
    """
    counts: Dict[str, int] = {}
    first: Optional[str] = None
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON ({exc})") from exc
            try:
                name = validate_live_event(payload)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from exc
            if first is None:
                first = name
            counts[name] = counts.get(name, 0) + 1
    if first != "run_start":
        raise ValueError(f"{path}: stream must open with run_start, got {first!r}")
    return counts


class _ShardState:
    """Mutable live view of one shard, fed by its events."""

    __slots__ = (
        "devices", "num_steps", "steps_done", "rate", "heartbeats",
        "attempts", "rss_bytes",
    )

    def __init__(self, devices: int, num_steps: int) -> None:
        self.devices = int(devices)
        self.num_steps = int(num_steps)
        self.steps_done = 0
        self.rate = 0.0
        self.heartbeats = 0
        self.attempts = 0
        self.rss_bytes: Optional[int] = None


class RunMonitor:
    """Coordinator-side consumer of the live shard event stream.

    Plugs into :class:`repro.exec.resilience.ShardSupervisor` (which
    forwards worker events and its own lifecycle hooks) and into
    :class:`repro.exec.sharding.ShardedFleetSimulator` (which brackets
    the run with :meth:`begin_run` / :meth:`end_run`).  Every hook is
    exception-safe from the supervisor's point of view: monitoring can
    degrade, but it must never fail a run.

    Parameters
    ----------
    watch:
        ``True`` for a live status line on ``sys.stderr``, or any
        writable text stream (tests pass ``io.StringIO``).
    events:
        Path (opened for append) or writable stream receiving one JSON
        object per line (see :func:`validate_events_file`).
    flight_dir:
        Directory for :class:`~repro.obs.flight.FlightRecorder` crash
        dumps.  The sharded coordinator defaults it to the checkpoint
        directory when one exists.
    heartbeat_s:
        Heartbeat interval in simulated seconds (default
        :data:`DEFAULT_HEARTBEAT_S`); ``None`` disables in-round
        heartbeats while keeping lifecycle events and flight recording.
    straggler_ratio:
        A shard is flagged when its latest heartbeat rate drops below
        ``straggler_ratio`` × the median rate of the active shards.
    straggler_min_heartbeats:
        Heartbeats a shard must have reported before it can be flagged
        (suppresses cold-start noise).
    ring_size:
        Flight-recorder ring length per shard.
    watch_interval_s:
        Minimum wall-clock spacing between watch-line repaints (forced
        repaints — failures, completions — ignore it).
    clock:
        Monotonic clock, injectable for tests.
    """

    def __init__(
        self,
        watch: "bool | IO[str] | None" = None,
        events: "str | os.PathLike | IO[str] | None" = None,
        flight_dir: "str | os.PathLike | None" = None,
        heartbeat_s: Optional[float] = DEFAULT_HEARTBEAT_S,
        straggler_ratio: float = 0.5,
        straggler_min_heartbeats: int = 2,
        ring_size: int = DEFAULT_RING_SIZE,
        watch_interval_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if heartbeat_s is not None and heartbeat_s <= 0.0:
            raise ValueError(f"heartbeat_s must be positive, got {heartbeat_s}")
        if not 0.0 < straggler_ratio <= 1.0:
            raise ValueError(
                f"straggler_ratio must be in (0, 1], got {straggler_ratio}"
            )
        if straggler_min_heartbeats < 1:
            raise ValueError(
                "straggler_min_heartbeats must be positive, got "
                f"{straggler_min_heartbeats}"
            )
        self.heartbeat_s = heartbeat_s
        self._straggler_ratio = float(straggler_ratio)
        self._straggler_min = int(straggler_min_heartbeats)
        self._ring_size = int(ring_size)
        self._watch: Optional[IO[str]] = None
        if watch is True:
            self._watch = sys.stderr
        elif watch:
            self._watch = watch  # type: ignore[assignment]
        self._watch_interval_s = float(watch_interval_s)
        self._events_request = events
        self._events_stream: Optional[IO[str]] = None
        self._events_owned = False
        self._flight: Optional[FlightRecorder] = (
            FlightRecorder(flight_dir, ring_size)
            if flight_dir is not None
            else None
        )
        self._clock = clock
        self._counters: Dict[str, float] = {}
        self._shards: Dict[int, _ShardState] = {}
        self._flagged: set = set()
        self._completed: set = set()
        self._t0 = 0.0
        self._started = False
        self._finished = False
        self._last_render = float("-inf")
        self._last_line_len = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def flight_dir(self) -> Optional[str]:
        """The flight-recorder dump directory (``None`` when disabled)."""
        return (
            str(self._flight.directory) if self._flight is not None else None
        )

    def ensure_flight_dir(self, path: "str | os.PathLike") -> None:
        """Install a flight recorder at ``path`` unless one is set."""
        if self._flight is None:
            self._flight = FlightRecorder(path, self._ring_size)

    @property
    def counters(self) -> Dict[str, float]:
        """Monitor-side counters (``heartbeat.*`` / ``straggler.*`` /
        ``flight.*``) for folding into the coordinator's metrics."""
        return dict(self._counters)

    def heartbeat_steps(self, step_s: float) -> Optional[int]:
        """Engine ticks per heartbeat segment (``None`` when disabled)."""
        if self.heartbeat_s is None:
            return None
        return max(1, int(round(self.heartbeat_s / float(step_s))))

    def stragglers(self) -> Tuple[int, ...]:
        """Currently-flagged straggler shards, ascending."""
        return tuple(sorted(self._flagged))

    def progress(self) -> float:
        """Run completion in [0, 1], weighted by device-steps."""
        total = sum(
            state.devices * state.num_steps for state in self._shards.values()
        )
        if total <= 0:
            return 0.0
        done = sum(
            state.devices * min(state.steps_done, state.num_steps)
            for state in self._shards.values()
        )
        return done / total

    def eta_s(self) -> Optional[float]:
        """Estimated seconds to completion from current shard rates."""
        remaining = 0.0
        rate = 0.0
        for index, state in self._shards.items():
            if index in self._completed:
                continue
            remaining += state.devices * max(
                state.num_steps - state.steps_done, 0
            )
            rate += state.rate
        if remaining <= 0.0:
            return 0.0
        if rate <= 0.0:
            return None
        return remaining / rate

    def shard_rates(self) -> Dict[int, float]:
        """Latest heartbeat rate per shard (device-steps/s)."""
        return {
            index: state.rate
            for index, state in self._shards.items()
            if state.heartbeats > 0
        }

    # ------------------------------------------------------------------
    # Run lifecycle (called by the sharded coordinator)
    # ------------------------------------------------------------------
    def begin_run(
        self,
        shard_sizes: "List[int] | Tuple[int, ...]",
        num_steps: int,
        step_s: float = 1.0,
    ) -> None:
        """Arm the monitor for one run and emit ``run_start``."""
        self._t0 = self._clock()
        self._started = True
        self._finished = False
        self._counters = {}
        self._flagged = set()
        self._completed = set()
        self._shards = {
            index: _ShardState(devices=size, num_steps=num_steps)
            for index, size in enumerate(shard_sizes)
        }
        self._last_render = float("-inf")
        if self._events_request is not None and self._events_stream is None:
            if hasattr(self._events_request, "write"):
                self._events_stream = self._events_request  # type: ignore[assignment]
            else:
                self._events_stream = open(
                    os.fspath(self._events_request), "a", encoding="utf-8"
                )
                self._events_owned = True
        self._emit(
            {
                "event": "run_start",
                "schema": LIVE_SCHEMA,
                "shards": len(self._shards),
                "devices": int(sum(shard_sizes)),
                "num_steps": int(num_steps),
                "step_s": float(step_s),
                "heartbeat_s": self.heartbeat_s,
            }
        )
        self._render(force=True)

    def end_run(self, ok: bool) -> None:
        """Emit ``run_complete``, finish the watch line, close the file."""
        if not self._started or self._finished:
            return
        self._finished = True
        self._emit(
            {
                "event": "run_complete",
                "ok": bool(ok),
                "progress": round(self.progress(), 6),
                "stragglers": list(self.stragglers()),
                "heartbeats": int(self._counters.get("heartbeat.received", 0)),
                "elapsed_s": round(self._clock() - self._t0, 6),
            }
        )
        self._render(force=True)
        if self._watch is not None:
            try:
                self._watch.write("\n")
                self._watch.flush()
            except Exception:  # noqa: BLE001 - watch stream gone
                pass
        if self._events_owned and self._events_stream is not None:
            try:
                self._events_stream.close()
            finally:
                self._events_stream = None
                self._events_owned = False

    # ------------------------------------------------------------------
    # Supervisor hooks
    # ------------------------------------------------------------------
    def handle_event(
        self, task_index: int, attempt: int, payload: object
    ) -> None:
        """Fold one in-flight worker event (heartbeat protocol)."""
        if not isinstance(payload, dict) or "event" not in payload:
            self._count("heartbeat.malformed")
            return
        if self._flight is not None:
            self._flight.record(task_index, payload)
            self._count("flight.events")
        name = payload["event"]
        state = self._state(task_index)
        if name == "attempt_start":
            state.attempts = int(attempt) + 1
            state.devices = int(payload.get("devices", state.devices))
            state.num_steps = int(payload.get("num_steps", state.num_steps))
            state.steps_done = int(payload.get("steps_done", state.steps_done))
        elif name == "heartbeat":
            self._count("heartbeat.received")
            state.steps_done = int(payload.get("steps_done", state.steps_done))
            state.num_steps = int(payload.get("num_steps", state.num_steps))
            state.devices = int(payload.get("devices", state.devices))
            state.rate = float(payload.get("rate", 0.0))
            state.heartbeats += 1
            rss = payload.get("rss_bytes")
            if rss is not None:
                state.rss_bytes = int(rss)
        elif name == "checkpoint":
            state.steps_done = int(payload.get("steps_done", state.steps_done))
        self._emit(dict(payload))
        if name == "heartbeat":
            self._check_stragglers()
        self._render(force=False)

    def on_attempt_start(
        self, task_index: int, attempt: int, inline: bool
    ) -> None:
        """Supervisor launched (or inlined) an attempt."""
        event = {
            "event": "launch",
            "shard": int(task_index),
            "attempt": int(attempt),
            "inline": bool(inline),
        }
        if self._flight is not None:
            self._flight.record(task_index, event)
            self._count("flight.events")
        self._emit(event)

    def on_attempt_failure(
        self, task_index: int, attempt: int, kind: str, reason: str
    ) -> None:
        """An attempt failed: dump the flight ring and emit the event."""
        event: Dict[str, object] = {
            "event": "attempt_failure",
            "shard": int(task_index),
            "attempt": int(attempt),
            "kind": str(kind),
            "reason": str(reason),
        }
        if self._flight is not None:
            self._flight.record(task_index, dict(event))
            self._count("flight.events")
            try:
                path = self._flight.dump(task_index, attempt, kind, reason)
            except OSError:
                path = None
            else:
                self._count("flight.dumps")
            if path is not None:
                event["flight"] = str(path)
        self._emit(event)
        self._render(force=True)

    def on_task_complete(self, task_index: int, attempts: int) -> None:
        """A shard finished (result accepted by validation)."""
        state = self._state(task_index)
        state.steps_done = state.num_steps
        state.attempts = int(attempts)
        self._completed.add(task_index)
        if task_index in self._flagged:
            self._flagged.discard(task_index)
            self._emit(
                {"event": "straggler_cleared", "shard": int(task_index)}
            )
        self._emit(
            {
                "event": "shard_complete",
                "shard": int(task_index),
                "attempts": int(attempts),
            }
        )
        self._render(force=True)

    def flight_path(self, task_index: int) -> Optional[str]:
        """Most recent flight dump for a shard, for error messages."""
        if self._flight is None:
            return None
        path = self._flight.last_dump(task_index)
        return str(path) if path is not None else None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _state(self, task_index: int) -> _ShardState:
        state = self._shards.get(task_index)
        if state is None:
            state = _ShardState(devices=0, num_steps=0)
            self._shards[task_index] = state
        return state

    def _count(self, name: str, value: float = 1.0) -> None:
        self._counters[name] = self._counters.get(name, 0.0) + value

    def _emit(self, payload: Dict[str, object]) -> None:
        if self._events_stream is None:
            return
        event = {"t": round(max(self._clock() - self._t0, 0.0), 6)}
        event.update(payload)
        try:
            self._events_stream.write(
                json.dumps(event, sort_keys=True, default=str) + "\n"
            )
            self._events_stream.flush()
        except Exception:  # noqa: BLE001 - event sink gone; keep running
            pass

    def _check_stragglers(self) -> None:
        """Re-evaluate the relative-lag rule over active shard rates."""
        active = {
            index: state
            for index, state in self._shards.items()
            if index not in self._completed and state.heartbeats > 0
        }
        if len(active) < 2:
            return
        med = median(state.rate for state in active.values())
        if med <= 0.0:
            return
        threshold = self._straggler_ratio * med
        for index, state in active.items():
            lagging = (
                state.heartbeats >= self._straggler_min
                and state.rate < threshold
            )
            if lagging and index not in self._flagged:
                self._flagged.add(index)
                self._count("straggler.flags")
                self._emit(
                    {
                        "event": "straggler",
                        "shard": int(index),
                        "rate": round(state.rate, 3),
                        "median_rate": round(med, 3),
                        "threshold": round(threshold, 3),
                    }
                )
            elif not lagging and index in self._flagged:
                self._flagged.discard(index)
                self._emit(
                    {
                        "event": "straggler_cleared",
                        "shard": int(index),
                        "rate": round(state.rate, 3),
                        "median_rate": round(med, 3),
                    }
                )

    def _render(self, force: bool) -> None:
        if self._watch is None or not self._started:
            return
        now = self._clock()
        if not force and (now - self._last_render) < self._watch_interval_s:
            return
        self._last_render = now
        total = sum(
            state.devices * state.num_steps for state in self._shards.values()
        )
        done = sum(
            state.devices * min(state.steps_done, state.num_steps)
            for state in self._shards.values()
        )
        pct = 100.0 * done / total if total else 0.0
        rate = sum(
            state.rate
            for index, state in self._shards.items()
            if index not in self._completed
        )
        if rate <= 0.0 and done:
            # Every shard already finished (or none has heartbeat yet):
            # fall back to the whole-run average so the final repaint
            # shows real throughput instead of an idle 0.
            elapsed = now - self._t0
            if elapsed > 0.0:
                rate = done / elapsed
        eta = self.eta_s()
        if eta is None:
            eta_text = "--:--"
        else:
            eta_text = f"{int(eta) // 60:02d}:{int(eta) % 60:02d}"
        flagged = ",".join(str(index) for index in self.stragglers()) or "-"
        line = (
            f"[repro] {pct:5.1f}% | {int(done):,}/{int(total):,} dev-steps"
            f" | {rate:,.0f} dev-steps/s | eta {eta_text}"
            f" | shards {len(self._completed)}/{len(self._shards)}"
            f" | stragglers {flagged}"
        )
        padded = line.ljust(self._last_line_len)
        self._last_line_len = len(line)
        try:
            self._watch.write("\r" + padded)
            self._watch.flush()
        except Exception:  # noqa: BLE001 - watch stream gone
            pass

"""Crash flight recorder for supervised shard attempts.

When a shard worker dies, hangs past its timeout, or returns a corrupt
payload, the process is already gone — it cannot dump its own state.
The :class:`FlightRecorder` therefore lives on the *coordinator* side
of the result pipe: every in-flight event a worker ships (attempt
starts, round starts, heartbeats, checkpoints) plus the supervisor's
own lifecycle events (launches, retries, failures) is folded into a
bounded per-shard ring, and when an attempt fails the ring is dumped as
a small JSON artifact next to the checkpoints.  A chaos failure then
leaves behind the last ~:data:`DEFAULT_RING_SIZE` things the shard did
instead of just an exit code, and
:class:`repro.exec.resilience.ShardExecutionError` can point straight
at the file.

The dump format is versioned (:data:`FLIGHT_SCHEMA`) and append-safe:
one file per ``(shard, attempt)``, so a shard that fails several
attempts keeps one recording per attempt rather than overwriting the
evidence.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional

__all__ = [
    "DEFAULT_RING_SIZE",
    "FLIGHT_SCHEMA",
    "FlightRecorder",
]

#: Schema tag stamped on every flight-recorder dump.
FLIGHT_SCHEMA = "repro.flight/v1"

#: Events retained per shard before the ring starts evicting.
DEFAULT_RING_SIZE = 64


class FlightRecorder:
    """Bounded per-shard event rings, dumpable as JSON crash artifacts.

    Parameters
    ----------
    directory:
        Where dumps are written (created on first dump, so a fault-free
        run leaves no empty directory behind).
    ring_size:
        Events retained per shard; older events are evicted FIFO.
    """

    def __init__(
        self,
        directory: "str | Path",
        ring_size: int = DEFAULT_RING_SIZE,
    ) -> None:
        if ring_size < 1:
            raise ValueError(f"ring_size must be positive, got {ring_size}")
        self._directory = Path(directory)
        self._ring_size = int(ring_size)
        self._rings: Dict[int, Deque[Dict[str, object]]] = {}
        self._last_round: Dict[int, int] = {}
        self._last_dump: Dict[int, Path] = {}
        self.events_recorded = 0
        self.dumps_written = 0

    @property
    def directory(self) -> Path:
        """The dump directory."""
        return self._directory

    def record(self, shard: int, event: Dict[str, object]) -> None:
        """Append one event to the shard's ring.

        ``round_start`` events additionally update the shard's
        last-known round, which the dump reports even after the event
        itself has been evicted from the ring.
        """
        ring = self._rings.get(shard)
        if ring is None:
            ring = deque(maxlen=self._ring_size)
            self._rings[shard] = ring
        ring.append(dict(event))
        self.events_recorded += 1
        if event.get("event") == "round_start":
            try:
                self._last_round[shard] = int(event["round"])  # type: ignore[arg-type]
            except (KeyError, TypeError, ValueError):
                pass

    def events(self, shard: int) -> List[Dict[str, object]]:
        """The shard's current ring contents, oldest first."""
        return [dict(event) for event in self._rings.get(shard, ())]

    def last_round(self, shard: int) -> Optional[int]:
        """Last round the shard was seen starting (``None`` if never)."""
        return self._last_round.get(shard)

    def dump_path(self, shard: int, attempt: int) -> Path:
        """Where a dump for ``(shard, attempt)`` lands."""
        return (
            self._directory
            / f"flight_shard_{shard:04d}_attempt_{attempt:02d}.json"
        )

    def last_dump(self, shard: int) -> Optional[Path]:
        """Path of the shard's most recent dump (``None`` if none yet)."""
        return self._last_dump.get(shard)

    def dump(
        self, shard: int, attempt: int, kind: str, reason: str
    ) -> Path:
        """Write the shard's ring as a JSON crash artifact.

        ``kind`` is the failure class (``died`` / ``error`` /
        ``timeout`` / ``corrupt``); ``reason`` is the human-readable
        description the supervisor logged.  Returns the written path.
        """
        payload = {
            "schema": FLIGHT_SCHEMA,
            "shard": int(shard),
            "attempt": int(attempt),
            "kind": str(kind),
            "reason": str(reason),
            "last_round": self._last_round.get(shard),
            "num_events": len(self._rings.get(shard, ())),
            "events": self.events(shard),
        }
        self._directory.mkdir(parents=True, exist_ok=True)
        path = self.dump_path(shard, attempt)
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n",
            encoding="utf-8",
        )
        self._last_dump[shard] = path
        self.dumps_written += 1
        return path

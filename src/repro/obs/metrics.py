"""Low-overhead runtime metrics for the fleet execution core.

The engine's only visibility used to be offline: ``cProfile`` via
``scripts/profile_fleet.py`` and end-of-run
:class:`repro.fleet.telemetry.FleetTelemetry`.  This module adds the
*online* layer: a :class:`MetricsRegistry` of *counters* (monotonic
totals), *gauges* (last-sampled values) and fixed-bucket *histograms*
(p50/p95/p99) that the execution core
(:class:`repro.exec.engine.StepEngine`) updates as a run executes, plus
per-tick *phase spans* that can be exported as a Chrome trace-event
timeline (open it in Perfetto or ``chrome://tracing``).

Design constraints, in priority order:

* **Observation must never perturb the simulation.**  The registry is
  write-only from the engine's point of view: it reads clocks and
  counters, never random streams or sample arrays, so a metered run's
  traces are bit-identical to an unmetered run in every engine mode —
  pinned by the equivalence tests.
* **Disabled means free.**  The default recorder is the no-op
  :data:`NULL_RECORDER` (``enabled = False``); the engine guards every
  metric update behind that flag, so the disabled path performs no
  clock reads and allocates nothing per tick.
* **Shard-mergeable.**  A :class:`MetricsSnapshot` is a plain frozen
  value; :meth:`MetricsSnapshot.merge` is associative with
  :meth:`MetricsSnapshot.empty` as identity, so the sharded coordinator
  can fold worker snapshots in any grouping — counters sum, gauges sum
  (use them for quantities that are additive across shards, e.g.
  buffered samples), histograms merge bucket-wise and span timelines
  concatenate.  Device-attributable counters are therefore invariant
  to the shard count.

Histograms use fixed geometric buckets (:func:`default_bucket_bounds`):
observation is one :func:`bisect.bisect_left` and an integer add, and
any two snapshots of the same metric merge exactly because they share
the bucket boundaries.  Quantiles are estimated by rank interpolation
inside the containing bucket, so the error is bounded by one bucket's
relative width (~19 % with the default ratio) — plenty for spotting a
straggling phase, and validated against :func:`numpy.percentile` in the
tests.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "DEFAULT_BUCKET_RATIO",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullRecorder",
    "NULL_RECORDER",
    "SpanEvent",
    "default_bucket_bounds",
]

#: Ratio between consecutive default histogram bucket bounds.  The
#: worst-case relative quantile error is ``ratio - 1``.
DEFAULT_BUCKET_RATIO: float = 2.0 ** 0.25


def default_bucket_bounds(
    start: float = 1e-7,
    stop: float = 1e5,
    ratio: float = DEFAULT_BUCKET_RATIO,
) -> Tuple[float, ...]:
    """Geometric bucket upper bounds shared by every default histogram.

    The range covers sub-microsecond phase spans up to 10⁵ (seconds or
    devices — histograms are unitless), so one bound set serves both
    duration and batch-size metrics and every snapshot merges exactly.
    """
    if not (start > 0.0 and stop > start and ratio > 1.0):
        raise ValueError(
            f"invalid bucket geometry: start={start}, stop={stop}, ratio={ratio}"
        )
    bounds: List[float] = [start]
    while bounds[-1] < stop:
        bounds.append(bounds[-1] * ratio)
    return tuple(bounds)


#: The shared default bounds (built once; ~160 buckets).
_DEFAULT_BOUNDS: Tuple[float, ...] = default_bucket_bounds()


@dataclass(frozen=True)
class SpanEvent:
    """One completed phase span, in the recording process's clock.

    ``start_ns`` is a :func:`time.perf_counter_ns` reading; exporters
    rebase to the earliest span so timelines from forked shard workers
    (which share the monotonic clock) line up in one view.
    """

    name: str
    start_ns: int
    duration_ns: int
    tid: int = 0


@dataclass(frozen=True)
class HistogramSnapshot:
    """Frozen fixed-bucket histogram with rank-interpolated quantiles.

    ``counts`` has one entry per bound (observations ``<= bounds[i]``
    land in bucket ``i``) plus a trailing overflow bucket.
    """

    bounds: Tuple[float, ...]
    counts: Tuple[int, ...]
    total: float
    low: float
    high: float

    def __post_init__(self) -> None:
        if len(self.counts) != len(self.bounds) + 1:
            raise ValueError(
                f"counts must have len(bounds) + 1 entries, got "
                f"{len(self.counts)} for {len(self.bounds)} bounds"
            )

    @property
    def count(self) -> int:
        """Total number of observations."""
        return int(sum(self.counts))

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (NaN when empty)."""
        count = self.count
        return self.total / count if count else float("nan")

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (0-100) by rank interpolation.

        The estimate lies inside the bucket containing the true rank,
        clamped to the observed ``[low, high]`` range, so its relative
        error is bounded by one bucket's width.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        count = self.count
        if count == 0:
            return float("nan")
        target = q / 100.0 * count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lower = self.bounds[index - 1] if index > 0 else self.low
                upper = (
                    self.bounds[index] if index < len(self.bounds) else self.high
                )
                fraction = (
                    (target - cumulative) / bucket_count if bucket_count else 0.0
                )
                value = lower + fraction * (upper - lower)
                return float(min(max(value, self.low), self.high))
            cumulative += bucket_count
        return float(self.high)

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Bucket-wise merge; both histograms must share their bounds."""
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            total=self.total + other.total,
            low=min(self.low, other.low),
            high=max(self.high, other.high),
        )

    def to_dict(self) -> Dict[str, object]:
        """Compact JSON form: summary stats plus the non-empty buckets."""
        nonzero = [
            (index, count) for index, count in enumerate(self.counts) if count
        ]
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.low if self.count else None,
            "max": self.high if self.count else None,
            "mean": self.mean if self.count else None,
            "p50": self.percentile(50.0) if self.count else None,
            "p95": self.percentile(95.0) if self.count else None,
            "p99": self.percentile(99.0) if self.count else None,
            "buckets": {
                str(
                    self.bounds[index] if index < len(self.bounds) else "inf"
                ): count
                for index, count in nonzero
            },
        }


class _Histogram:
    """Mutable fixed-bucket histogram backing one registry metric."""

    __slots__ = ("bounds", "counts", "total", "low", "high")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.low = float("inf")
        self.high = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        if value < self.low:
            self.low = value
        if value > self.high:
            self.high = value

    def freeze(self) -> HistogramSnapshot:
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=tuple(self.counts),
            total=self.total,
            low=self.low,
            high=self.high,
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """Frozen, mergeable state of one :class:`MetricsRegistry`.

    The merge algebra is a commutative monoid with :meth:`empty` as the
    identity (spans excepted: their concatenation order follows the
    merge order, but the multiset of events is order-free), which is
    what lets the sharded coordinator fold worker snapshots in any
    grouping and still report shard-count-invariant totals.
    """

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, HistogramSnapshot] = field(default_factory=dict)
    spans: Tuple[SpanEvent, ...] = ()

    @classmethod
    def empty(cls) -> "MetricsSnapshot":
        """The merge identity."""
        return cls()

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Associative merge: sum counters and gauges, merge histograms
        bucket-wise, concatenate span timelines."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0.0) + value
        gauges = dict(self.gauges)
        for name, value in other.gauges.items():
            gauges[name] = gauges.get(name, 0.0) + value
        histograms = dict(self.histograms)
        for name, histogram in other.histograms.items():
            mine = histograms.get(name)
            histograms[name] = (
                histogram if mine is None else mine.merge(histogram)
            )
        return MetricsSnapshot(
            counters=counters,
            gauges=gauges,
            histograms=histograms,
            spans=self.spans + other.spans,
        )

    @classmethod
    def merge_all(
        cls, parts: Sequence["MetricsSnapshot"]
    ) -> "MetricsSnapshot":
        """Fold any number of snapshots (empty sequence -> identity)."""
        merged = cls.empty()
        for part in parts:
            merged = merged.merge(part)
        return merged

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form of the snapshot (spans summarised by count)."""
        return {
            "counters": {
                name: self.counters[name] for name in sorted(self.counters)
            },
            "gauges": {name: self.gauges[name] for name in sorted(self.gauges)},
            "histograms": {
                name: self.histograms[name].to_dict()
                for name in sorted(self.histograms)
            },
            "num_span_events": len(self.spans),
        }


class MetricsRegistry:
    """Collects counters, gauges, histograms and phase spans for one run.

    Parameters
    ----------
    trace_events:
        Retain individual :class:`SpanEvent` records (for the Chrome
        trace-event export).  Span *duration histograms* are always
        recorded; the event timeline is opt-in because a long run emits
        several events per tick.
    tid:
        Thread id stamped on this registry's span events — the sharded
        coordinator gives each worker its shard index so the merged
        timeline shows one lane per shard.
    bounds:
        Histogram bucket bounds; every histogram of one registry shares
        them so snapshots always merge.  Defaults to
        :func:`default_bucket_bounds`.
    """

    #: Real registries record; the engine checks this one flag.
    enabled: bool = True

    def __init__(
        self,
        trace_events: bool = False,
        tid: int = 0,
        bounds: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self._bounds = _DEFAULT_BOUNDS if bounds is None else tuple(bounds)
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, _Histogram] = {}
        self._spans: List[SpanEvent] = []
        self._trace_events = bool(trace_events)
        self._tid = int(tid)

    @property
    def trace_events(self) -> bool:
        """Whether individual span events are retained."""
        return self._trace_events

    @property
    def tid(self) -> int:
        """Thread id stamped on this registry's span events."""
        return self._tid

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def count(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to the counter ``name`` (created at zero)."""
        self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its latest sampled ``value``."""
        self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = _Histogram(self._bounds)
            self._histograms[name] = histogram
        histogram.observe(value)

    def now_ns(self) -> int:
        """Monotonic clock reading for span boundaries."""
        return time.perf_counter_ns()

    def span(self, name: str, start_ns: int, end_ns: int) -> None:
        """Record one completed phase span.

        Always feeds the span's duration (in seconds) into the
        histogram ``name``; additionally retains the event when
        ``trace_events`` is on.
        """
        duration_ns = end_ns - start_ns
        self.observe(name, duration_ns * 1e-9)
        if self._trace_events:
            self._spans.append(
                SpanEvent(
                    name=name,
                    start_ns=start_ns,
                    duration_ns=duration_ns,
                    tid=self._tid,
                )
            )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter_value(self, name: str) -> float:
        """Current value of a counter (zero when never incremented)."""
        return self._counters.get(name, 0.0)

    def phase_totals(self, prefix: str = "tick.") -> Dict[str, float]:
        """Cumulative histogram sums for metrics named ``prefix*``.

        Span durations always feed their histogram (:meth:`span`), so
        for the ``tick.*`` phase spans this is the total seconds spent
        per engine phase so far — the cheap cumulative read the live
        heartbeats difference into per-interval phase deltas.
        """
        return {
            name: histogram.total
            for name, histogram in self._histograms.items()
            if name.startswith(prefix)
        }

    def snapshot(self) -> MetricsSnapshot:
        """Freeze the current state into a mergeable snapshot."""
        return MetricsSnapshot(
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            histograms={
                name: histogram.freeze()
                for name, histogram in self._histograms.items()
            },
            spans=tuple(self._spans),
        )


class NullRecorder:
    """The do-nothing default recorder.

    ``enabled`` is ``False``, so the engine never takes a clock reading
    or touches a metric structure — the disabled path costs nothing and
    allocates nothing per tick.  The methods exist so code that does
    not bother guarding still works.
    """

    enabled: bool = False
    trace_events: bool = False
    tid: int = 0

    def count(self, name: str, value: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def now_ns(self) -> int:
        return 0

    def span(self, name: str, start_ns: int, end_ns: int) -> None:
        pass

    def counter_value(self, name: str) -> float:
        return 0.0

    def phase_totals(self, prefix: str = "tick.") -> Dict[str, float]:
        return {}

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot.empty()


#: Shared no-op recorder used as the default everywhere.
NULL_RECORDER = NullRecorder()


def percentile_reference(values: Sequence[float], q: float) -> float:
    """NumPy's linear-interpolation percentile, for tests and tools."""
    return float(np.percentile(np.asarray(values, dtype=float), q))

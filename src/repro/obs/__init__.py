"""Runtime observability for the fleet platform.

The :mod:`repro.obs` package is the *online* counterpart of the offline
profiling tools: a low-overhead metrics registry
(:class:`~repro.obs.metrics.MetricsRegistry`) that the execution core
updates while a run executes — per-tick phase spans, engine counters
and gauges, per-config cohort histograms — plus mergeable snapshots for
the sharded coordinator (:class:`~repro.obs.metrics.MetricsSnapshot`)
and exporters (:mod:`repro.obs.export`) for JSON, Chrome trace-event
timelines (Perfetto) and the Prometheus text exposition format.

Since the live-telemetry PR the package also carries the *in-flight*
plane: :mod:`repro.obs.live` (worker heartbeats, the coordinator-side
:class:`~repro.obs.live.RunMonitor` with progress/ETA, stragglers, the
``--watch`` line and the NDJSON event stream) and
:mod:`repro.obs.flight` (the per-shard crash flight recorder).

Everything is injectable and off by default: simulators take a
``metrics=`` recorder, and the :data:`~repro.obs.metrics.NULL_RECORDER`
default guarantees the unmetered hot path performs no clock reads and
no per-tick allocations, and that traces stay bit-identical in every
engine mode.
"""

from repro.obs.export import (
    COUNTER_GLOSSARY,
    snapshot_to_dict,
    to_chrome_trace,
    to_prometheus_text,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.flight import DEFAULT_RING_SIZE, FLIGHT_SCHEMA, FlightRecorder
from repro.obs.live import (
    DEFAULT_HEARTBEAT_S,
    LIVE_SCHEMA,
    RunMonitor,
    build_heartbeat,
    current_rss_bytes,
    validate_events_file,
    validate_live_event,
)
from repro.obs.logsetup import LOG_LEVELS, configure_logging, shard_logger
from repro.obs.metrics import (
    DEFAULT_BUCKET_RATIO,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    NullRecorder,
    NULL_RECORDER,
    SpanEvent,
    default_bucket_bounds,
)

__all__ = [
    "COUNTER_GLOSSARY",
    "DEFAULT_BUCKET_RATIO",
    "DEFAULT_HEARTBEAT_S",
    "DEFAULT_RING_SIZE",
    "FLIGHT_SCHEMA",
    "FlightRecorder",
    "HistogramSnapshot",
    "LIVE_SCHEMA",
    "LOG_LEVELS",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullRecorder",
    "NULL_RECORDER",
    "RunMonitor",
    "SpanEvent",
    "build_heartbeat",
    "configure_logging",
    "current_rss_bytes",
    "default_bucket_bounds",
    "shard_logger",
    "snapshot_to_dict",
    "to_chrome_trace",
    "to_prometheus_text",
    "validate_events_file",
    "validate_live_event",
    "write_chrome_trace",
    "write_metrics_json",
]

"""Profile a fleet simulation and dump the hottest functions.

A tiny cProfile harness around the fleet engine so a performance
regression can be localised in one command, without writing a script:

    PYTHONPATH=src python scripts/profile_fleet.py
    PYTHONPATH=src python scripts/profile_fleet.py \
        --devices 2000 --duration 20 --controllers per_object --trace full \
        --sort tottime --top 40

``--compare`` profiles two named recipes back to back and prints a
side-by-side table of their hottest functions, so the cost shifted by
a mode change is visible at a glance:

    PYTHONPATH=src python scripts/profile_fleet.py \
        --devices 2000 --compare controller_bank batched_noise

Training the shared classifier and generating the population happen
*outside* the profiled region — the numbers cover exactly one
simulation run (runtime construction plus the tick loop), which is what
``BENCH_fleet.json`` times.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time
from pathlib import Path

# The named execution recipes live with the benchmarks so the profiler
# and BENCH_fleet.json can never disagree about what a recipe means.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))
from _bench_utils import (  # noqa: E402
    RECIPES,
    campaign_variant_count,
    recipe_settings,
)

#: Counters whose per-run deltas are printed for every compared recipe
#: (cache effectiveness and cross-variant sharing at a glance).
SHARING_COUNTERS = (
    "plan_cache.hits",
    "plan_cache.misses",
    "campaign.shared_group_hits",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--devices", type=int, default=1000,
                        help="number of simulated devices (default: 1000)")
    parser.add_argument("--duration", type=float, default=20.0,
                        help="simulated seconds per device (default: 20)")
    parser.add_argument("--seed", type=int, default=2020,
                        help="master seed for training and the population")
    parser.add_argument("--windows", type=int, default=16,
                        help="training windows per activity per configuration")
    parser.add_argument("--features", choices=("incremental", "exact"),
                        default="incremental")
    parser.add_argument("--sensing", choices=("stacked", "per_device"),
                        default="stacked")
    parser.add_argument("--controllers", choices=("bank", "per_object"),
                        default="bank")
    parser.add_argument("--noise", choices=("per_device", "batched"),
                        default="per_device",
                        help="acquisition layer (default: per_device)")
    parser.add_argument("--dtype", choices=("float64", "float32"),
                        default="float64",
                        help="compute-lane precision (default: float64)")
    parser.add_argument("--trace", choices=("summary", "full"),
                        default="summary")
    parser.add_argument("--compare", nargs=2, metavar=("MODE_A", "MODE_B"),
                        choices=sorted(RECIPES), default=None,
                        help="profile two named recipes and print a "
                             "side-by-side diff of their hottest functions")
    parser.add_argument("--sort", choices=("tottime", "cumulative", "ncalls"),
                        default="tottime", help="pstats sort key")
    parser.add_argument("--top", type=int, default=30,
                        help="number of entries to print (default: 30)")
    parser.add_argument("--output", default=None,
                        help="optional .pstats dump path for snakeviz etc.")
    parser.add_argument("--metrics", default=None, metavar="PATH",
                        help="meter the profiled run and write the metrics "
                             "snapshot (phase-span histograms, counters) as "
                             "JSON")
    parser.add_argument("--trace-events", default=None, metavar="PATH",
                        dest="trace_events",
                        help="meter the profiled run and write its per-tick "
                             "phase spans as Chrome trace-event JSON "
                             "(Perfetto)")
    return parser


def _profile_run(simulator, population, trace):
    """One warmed-up, profiled simulation; returns (result, stats)."""
    # One untimed warm-up run so lazily built caches (DFT bases,
    # spectral layouts, BLAS threads) do not pollute the profile.  A
    # metered simulator is disabled for the warm-up so the exported
    # snapshot covers exactly the profiled run.
    metrics = simulator.metrics
    if metrics.enabled:
        metrics.enabled = False
        simulator.run(population, trace=trace)
        metrics.enabled = True
    else:
        simulator.run(population, trace=trace)
    profile = cProfile.Profile()
    profile.enable()
    result = simulator.run(population, trace=trace)
    profile.disable()
    return result, pstats.Stats(profile)


def _function_totals(stats: pstats.Stats) -> dict:
    """Map ``file:line(function)`` -> (tottime, ncalls)."""
    totals = {}
    for (filename, line, name), (cc, nc, tt, ct, callers) in stats.stats.items():
        short = filename.rsplit("/", 1)[-1]
        totals[f"{short}:{line}({name})"] = (tt, nc)
    return totals


def _print_comparison(name_a, result_a, stats_a, name_b, result_b, stats_b,
                      top: int) -> None:
    totals_a = _function_totals(stats_a)
    totals_b = _function_totals(stats_b)
    ranked = sorted(
        set(totals_a) | set(totals_b),
        key=lambda key: -max(
            totals_a.get(key, (0.0, 0))[0], totals_b.get(key, (0.0, 0))[0]
        ),
    )[:top]
    width = max((len(key) for key in ranked), default=20)
    print(
        f"\nside-by-side tottime — {name_a} "
        f"({result_a.elapsed_s:.2f} s) vs {name_b} "
        f"({result_b.elapsed_s:.2f} s)"
    )
    print(f"{'function':<{width}}  {name_a:>14}  {name_b:>14}      delta")
    for key in ranked:
        left, _ = totals_a.get(key, (0.0, 0))
        right, _ = totals_b.get(key, (0.0, 0))
        print(
            f"{key:<{width}}  {left:>12.3f} s  {right:>12.3f} s  "
            f"{right - left:>+8.3f} s"
        )


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    from repro.core.adasense import AdaSense
    from repro.fleet import DevicePopulation, FleetSimulator

    start = time.perf_counter()
    system = AdaSense.train(
        windows_per_activity_per_config=args.windows, seed=args.seed
    )
    population = DevicePopulation.generate(
        args.devices, duration_s=args.duration, master_seed=args.seed
    )
    print(
        f"setup: {args.devices} devices x {args.duration:.0f} s, "
        f"prepared in {time.perf_counter() - start:.1f} s",
        file=sys.stderr,
    )

    if args.compare is not None:
        from repro.obs import MetricsRegistry

        name_a, name_b = args.compare
        outcomes = []
        for name in (name_a, name_b):
            recipe, trace = recipe_settings(name)
            registry = MetricsRegistry()
            if name == "sequential":
                simulator = FleetSimulator(system.pipeline, **recipe)
                simulator.run_sequential(population)
                profile = cProfile.Profile()
                profile.enable()
                result = simulator.run_sequential(population)
                profile.disable()
                outcomes.append((result, pstats.Stats(profile)))
            else:
                variants = campaign_variant_count(name)
                if variants > 1:
                    from repro.campaign import CampaignRunner, variant_grid

                    grid = variant_grid(
                        stability_thresholds=(10, 20, 30, 40),
                        confidence_thresholds=(0.75, 0.8, 0.85, 0.9),
                    )[:variants]
                    runner = CampaignRunner(
                        system.pipeline, grid, metrics=registry, **recipe
                    )
                else:
                    runner = FleetSimulator(
                        system.pipeline, metrics=registry, **recipe
                    )
                outcomes.append(_profile_run(runner, population, trace))
            print(
                f"{name}: {outcomes[-1][0].elapsed_s:.2f} s wall, "
                f"{outcomes[-1][0].throughput_device_seconds_per_s:.0f} "
                f"device-seconds/s",
                file=sys.stderr,
            )
            counters = registry.snapshot().counters
            deltas = ", ".join(
                f"{key}={counters[key]:.0f}"
                for key in SHARING_COUNTERS
                if key in counters
            )
            if deltas:
                print(f"{name}: {deltas}", file=sys.stderr)
        _print_comparison(
            name_a, *outcomes[0], name_b, *outcomes[1], top=args.top
        )
        return 0

    registry = None
    if args.metrics is not None or args.trace_events is not None:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry(trace_events=args.trace_events is not None)
    simulator = FleetSimulator(
        system.pipeline,
        features=args.features,
        sensing=args.sensing,
        controllers=args.controllers,
        noise=args.noise,
        dtype=args.dtype,
        metrics=registry,
    )
    result, stats = _profile_run(simulator, population, args.trace)
    print(
        f"profiled run: {result.elapsed_s:.2f} s wall, "
        f"{result.throughput_device_seconds_per_s:.0f} device-seconds/s",
        file=sys.stderr,
    )
    stats.sort_stats(args.sort).print_stats(args.top)
    if args.output:
        stats.dump_stats(args.output)
        print(f"pstats dump -> {args.output}", file=sys.stderr)
    if registry is not None:
        from repro.obs import write_chrome_trace, write_metrics_json

        snapshot = registry.snapshot()
        meta = {
            "devices": args.devices,
            "duration_s": args.duration,
            "features": args.features,
            "sensing": args.sensing,
            "controllers": args.controllers,
            "noise": args.noise,
            "dtype": args.dtype,
            "trace": args.trace,
            "seed": args.seed,
        }
        if args.metrics is not None:
            write_metrics_json(snapshot, args.metrics, extra=meta)
            print(f"metrics -> {args.metrics}", file=sys.stderr)
        if args.trace_events is not None:
            write_chrome_trace(snapshot, args.trace_events)
            print(f"trace events -> {args.trace_events}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Profile a fleet simulation and dump the hottest functions.

A tiny cProfile harness around the fleet engine so a performance
regression can be localised in one command, without writing a script:

    PYTHONPATH=src python scripts/profile_fleet.py
    PYTHONPATH=src python scripts/profile_fleet.py \
        --devices 2000 --duration 20 --controllers per_object --trace full \
        --sort tottime --top 40

Training the shared classifier and generating the population happen
*outside* the profiled region — the numbers cover exactly one
simulation run (runtime construction plus the tick loop), which is what
``BENCH_fleet.json`` times.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--devices", type=int, default=1000,
                        help="number of simulated devices (default: 1000)")
    parser.add_argument("--duration", type=float, default=20.0,
                        help="simulated seconds per device (default: 20)")
    parser.add_argument("--seed", type=int, default=2020,
                        help="master seed for training and the population")
    parser.add_argument("--windows", type=int, default=16,
                        help="training windows per activity per configuration")
    parser.add_argument("--features", choices=("incremental", "exact"),
                        default="incremental")
    parser.add_argument("--sensing", choices=("stacked", "per_device"),
                        default="stacked")
    parser.add_argument("--controllers", choices=("bank", "per_object"),
                        default="bank")
    parser.add_argument("--trace", choices=("summary", "full"),
                        default="summary")
    parser.add_argument("--sort", choices=("tottime", "cumulative", "ncalls"),
                        default="tottime", help="pstats sort key")
    parser.add_argument("--top", type=int, default=30,
                        help="number of entries to print (default: 30)")
    parser.add_argument("--output", default=None,
                        help="optional .pstats dump path for snakeviz etc.")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    from repro.core.adasense import AdaSense
    from repro.fleet import DevicePopulation, FleetSimulator

    start = time.perf_counter()
    system = AdaSense.train(
        windows_per_activity_per_config=args.windows, seed=args.seed
    )
    population = DevicePopulation.generate(
        args.devices, duration_s=args.duration, master_seed=args.seed
    )
    simulator = FleetSimulator(
        system.pipeline,
        features=args.features,
        sensing=args.sensing,
        controllers=args.controllers,
    )
    # One untimed warm-up run so lazily built caches (DFT bases, spectral
    # layouts, BLAS threads) do not pollute the profile.
    simulator.run(population, trace=args.trace)
    print(
        f"setup: {args.devices} devices x {args.duration:.0f} s "
        f"({args.features}/{args.sensing}/{args.controllers}/{args.trace}), "
        f"prepared in {time.perf_counter() - start:.1f} s",
        file=sys.stderr,
    )

    profile = cProfile.Profile()
    profile.enable()
    result = simulator.run(population, trace=args.trace)
    profile.disable()

    print(
        f"profiled run: {result.elapsed_s:.2f} s wall, "
        f"{result.throughput_device_seconds_per_s:.0f} device-seconds/s",
        file=sys.stderr,
    )
    stats = pstats.Stats(profile)
    stats.sort_stats(args.sort).print_stats(args.top)
    if args.output:
        stats.dump_stats(args.output)
        print(f"pstats dump -> {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

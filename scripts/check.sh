#!/usr/bin/env bash
# Repo check: byte-compile every module, then run the tier-1 test suite.
#
# Usage: scripts/check.sh [extra pytest args]
set -euo pipefail
cd "$(dirname "$0")/.."

python -m compileall -q src

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest -x -q "$@"

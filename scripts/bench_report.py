#!/usr/bin/env python3
"""Print the benchmark trend recorded in ``BENCH_history.jsonl``.

Benchmark runs (``pytest benchmarks/test_fleet_throughput.py`` outside
smoke mode) append one timestamped record per suite — git sha, mode →
devices/s, gate ratios — to the ledger via
``_bench_utils.append_bench_history``.  This script folds the ledger
into a per-kind trend table so a regression shows up as a signed delta
against the previous run of the same suite, without diffing
``BENCH_fleet.json`` snapshots by hand.

Usage::

    python scripts/bench_report.py [--history PATH] [--last N] [--kind K]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_HISTORY = REPO_ROOT / "BENCH_history.jsonl"


def load_history(path: Path) -> List[Dict[str, object]]:
    """Parse the ledger, skipping blank lines; bad JSON is an error."""
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON ({exc})") from exc
            if not isinstance(record, dict) or "kind" not in record:
                raise ValueError(
                    f"{path}:{lineno}: record must be an object with a 'kind'"
                )
            records.append(record)
    return records


def _delta(current: float, previous: float) -> str:
    if previous == 0:
        return "     new"
    change = 100.0 * (current / previous - 1.0)
    return f"{change:+7.1f}%"


def format_trend(
    records: List[Dict[str, object]], last: int, kind_filter: str = ""
) -> str:
    """The per-kind trend tables, newest runs last."""
    by_kind: Dict[str, List[Dict[str, object]]] = {}
    for record in records:
        by_kind.setdefault(str(record["kind"]), []).append(record)
    lines: List[str] = []
    for kind in sorted(by_kind):
        if kind_filter and kind != kind_filter:
            continue
        history = by_kind[kind]
        shown = history[-last:] if last > 0 else history
        lines.append(f"{kind} ({len(history)} runs recorded)")
        lines.append("-" * 72)
        previous: Dict[str, float] = {}
        for record in shown:
            stamp = str(record.get("ts", "?"))
            sha = str(record.get("git_sha") or "-------")
            devices = record.get("num_devices", "?")
            lines.append(f"  {stamp}  {sha:<9} {devices:>6} devices")
            rates = record.get("devices_per_s")
            if isinstance(rates, dict):
                for mode in sorted(rates):
                    rate = float(rates[mode])
                    delta = (
                        _delta(rate, previous[mode])
                        if mode in previous
                        else "        "
                    )
                    lines.append(
                        f"      {mode:<18} {rate:12.1f} dev/s  {delta}"
                    )
                previous = {
                    mode: float(rate) for mode, rate in rates.items()
                }
            gates = record.get("gates")
            if isinstance(gates, dict):
                rendered = ", ".join(
                    f"{name}={float(value):.3f}"
                    for name, value in sorted(gates.items())
                )
                lines.append(f"      gates: {rendered}")
        lines.append("")
    if not lines:
        lines.append("no matching records")
    return "\n".join(lines).rstrip() + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Print the benchmark history trend."
    )
    parser.add_argument(
        "--history", default=str(DEFAULT_HISTORY),
        help=f"ledger path (default: {DEFAULT_HISTORY.name})",
    )
    parser.add_argument(
        "--last", type=int, default=10,
        help="show the most recent N runs per suite (default: 10; 0 = all)",
    )
    parser.add_argument(
        "--kind", default="",
        help="only show one suite (e.g. fleet_scaling, heartbeat_overhead)",
    )
    args = parser.parse_args(argv)
    path = Path(args.history)
    if not path.exists():
        print(
            f"no benchmark history at {path} — run "
            "'pytest benchmarks/test_fleet_throughput.py' (non-smoke) first"
        )
        return 1
    records = load_history(path)
    sys.stdout.write(format_trend(records, args.last, args.kind))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
